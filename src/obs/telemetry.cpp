#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/serialize.hpp"
#include "obs/trace.hpp"

namespace dooc::obs::telemetry {

namespace {

/// Decode-side sanity caps. A frame comes off a socket: every count is
/// checked against these (and against the bytes actually remaining) before
/// anything is allocated.
constexpr std::uint64_t kMaxSnapshotEntries = 4096;
constexpr std::uint64_t kMaxNameBytes = 512;
constexpr std::uint64_t kMaxJobs = 4096;

[[noreturn]] void malformed(const std::string& what) {
  throw IoError("malformed telemetry frame: " + what);
}

std::string get_name(BinaryReader& r, const char* what) {
  const auto len = r.get<std::uint64_t>();
  if (len > kMaxNameBytes || len > r.remaining()) {
    malformed(std::string(what) + ": name length exceeds payload");
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  if (len != 0) r.get_raw(s.data(), static_cast<std::size_t>(len));
  return s;
}

void put_hist(BinaryWriter& w, const Log2Histogram& h) {
  const RunningStats& st = h.stats();
  w.put<std::uint64_t>(st.count());
  w.put<double>(st.mean());
  w.put<double>(st.m2());
  w.put<double>(st.sum());
  w.put<double>(st.min());
  w.put<double>(st.max());
  std::uint32_t nonzero = 0;
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    if (h.bucket(static_cast<std::size_t>(b)) != 0) ++nonzero;
  }
  w.put<std::uint32_t>(nonzero);
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    const std::uint64_t c = h.bucket(static_cast<std::size_t>(b));
    if (c == 0) continue;
    w.put<std::uint8_t>(static_cast<std::uint8_t>(b));
    w.put<std::uint64_t>(c);
  }
}

Log2Histogram get_hist(BinaryReader& r) {
  const auto n = r.get<std::uint64_t>();
  const double mean = r.get<double>();
  const double m2 = r.get<double>();
  const double sum = r.get<double>();
  const double min = r.get<double>();
  const double max = r.get<double>();
  const auto nonzero = r.get<std::uint32_t>();
  if (nonzero > static_cast<std::uint32_t>(Log2Histogram::kBuckets)) {
    malformed("histogram bucket count");
  }
  // 9 bytes per (index, count) pair must fit in what remains.
  if (static_cast<std::uint64_t>(nonzero) * 9 > r.remaining()) {
    malformed("histogram buckets exceed payload");
  }
  std::vector<std::uint64_t> counts(Log2Histogram::kBuckets, 0);
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    const auto b = r.get<std::uint8_t>();
    if (b >= static_cast<std::uint8_t>(Log2Histogram::kBuckets)) {
      malformed("histogram bucket index");
    }
    counts[b] = r.get<std::uint64_t>();
  }
  return Log2Histogram::from_parts(RunningStats::from_parts(n, mean, m2, sum, min, max), counts);
}

void put_snapshot(BinaryWriter& w, const MetricsSnapshot& snap) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(
      std::min<std::size_t>(snap.entries.size(), kMaxSnapshotEntries)));
  std::size_t written = 0;
  for (const auto& [key, e] : snap.entries) {
    if (written++ == kMaxSnapshotEntries) break;
    w.put_string(key.name);
    w.put<std::int32_t>(key.node);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(e.kind));
    switch (e.kind) {
      case MetricKind::Counter: w.put<std::uint64_t>(e.count); break;
      case MetricKind::Gauge: w.put<double>(e.value); break;
      case MetricKind::Histogram: put_hist(w, e.hist); break;
    }
  }
}

MetricsSnapshot get_snapshot(BinaryReader& r) {
  const auto n = r.get<std::uint32_t>();
  if (n > kMaxSnapshotEntries) malformed("snapshot entry count");
  // Even an empty entry takes >= 13 bytes (name length + node + kind).
  if (static_cast<std::uint64_t>(n) * 13 > r.remaining()) {
    malformed("snapshot entries exceed payload");
  }
  MetricsSnapshot snap;
  for (std::uint32_t i = 0; i < n; ++i) {
    MetricsSnapshot::Key key;
    key.name = get_name(r, "snapshot entry");
    key.node = r.get<std::int32_t>();
    const auto kind = r.get<std::uint8_t>();
    if (kind > static_cast<std::uint8_t>(MetricKind::Histogram)) malformed("metric kind");
    MetricsSnapshot::Entry e;
    e.kind = static_cast<MetricKind>(kind);
    switch (e.kind) {
      case MetricKind::Counter: e.count = r.get<std::uint64_t>(); break;
      case MetricKind::Gauge: e.value = r.get<double>(); break;
      case MetricKind::Histogram: e.hist = get_hist(r); break;
    }
    snap.entries.emplace(std::move(key), std::move(e));
  }
  return snap;
}

double parse_double(const char* env, const std::string& key, const std::string& val, double lo,
                    double hi) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (end == val.c_str() || *end != '\0' || !(v >= lo) || !(v <= hi)) {
    throw InvalidArgument(std::string(env) + ": " + key + " wants a float in [" +
                          std::to_string(lo) + "," + std::to_string(hi) + "], got '" + val + "'");
  }
  return v;
}

int parse_int(const char* env, const std::string& key, const std::string& val, long lo, long hi) {
  char* end = nullptr;
  const long v = std::strtol(val.c_str(), &end, 10);
  if (end == val.c_str() || *end != '\0' || v < lo || v > hi) {
    throw InvalidArgument(std::string(env) + ": " + key + " wants an int in [" +
                          std::to_string(lo) + "," + std::to_string(hi) + "], got '" + val + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

// ---- config -----------------------------------------------------------------

TelemetryConfig TelemetryConfig::parse(const std::string& spec) {
  TelemetryConfig cfg;
  if (spec.empty()) return cfg;
  cfg.enabled = true;  // setting the variable means "on" unless it says off
  constexpr const char* kEnv = "DOOC_TELEMETRY";
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      if (!first || (tok != "on" && tok != "off")) {
        throw InvalidArgument(std::string(kEnv) + ": unknown token '" + tok +
                              "' (want on|off, interval=, miss=, stall=, zscore=, slow=, p99=, "
                              "history=, port=)");
      }
      cfg.enabled = tok == "on";
    } else {
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "interval") {
        cfg.interval_ms = parse_int(kEnv, key, val, 1, 3600'000);
      } else if (key == "miss") {
        cfg.miss_intervals = parse_int(kEnv, key, val, 1, 1000);
      } else if (key == "stall") {
        cfg.stall_intervals = parse_int(kEnv, key, val, 1, 100000);
      } else if (key == "zscore") {
        cfg.straggler_zscore = parse_double(kEnv, key, val, 0.1, 100.0);
      } else if (key == "slow") {
        cfg.slow_factor = parse_double(kEnv, key, val, 1.0, 1e6);
      } else if (key == "p99") {
        cfg.p99_factor = parse_double(kEnv, key, val, 1.0, 1e6);
      } else if (key == "history") {
        cfg.history = parse_int(kEnv, key, val, 2, 100000);
      } else if (key == "port") {
        cfg.metrics_port = parse_int(kEnv, key, val, 0, 65535);
      } else {
        throw InvalidArgument(std::string(kEnv) + ": unknown key '" + key + "'");
      }
    }
    first = false;
  }
  return cfg;
}

TelemetryConfig TelemetryConfig::from_env() {
  const char* env = std::getenv("DOOC_TELEMETRY");
  return env != nullptr ? parse(env) : TelemetryConfig{};
}

// ---- frame codec ------------------------------------------------------------

DataBuffer TelemetryFrame::encode() const {
  BinaryWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint16_t>(kVersion);
  w.put<std::int32_t>(node);
  w.put<std::uint64_t>(seq);
  w.put<std::uint64_t>(ts_ns);
  w.put<std::uint64_t>(tasks_executed);
  w.put<std::uint64_t>(tasks_inflight);
  w.put<std::uint64_t>(queue_depth);
  w.put<std::uint64_t>(inflight_bytes);
  w.put<std::uint64_t>(cache_hits);
  w.put<std::uint64_t>(cache_misses);
  w.put<std::uint64_t>(blocks_decoded);
  w.put<std::uint64_t>(faults);
  w.put<std::uint64_t>(trace_dropped);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(std::min<std::size_t>(jobs.size(), kMaxJobs)));
  std::size_t written = 0;
  for (const JobProgress& j : jobs) {
    if (written++ == kMaxJobs) break;
    w.put<std::uint32_t>(j.job);
    w.put<std::uint64_t>(j.tasks_done);
    w.put<std::uint64_t>(j.tasks_total);
  }
  put_snapshot(w, metrics);
  return w.take();
}

TelemetryFrame TelemetryFrame::decode(const DataBuffer& payload) {
  BinaryReader r(payload);
  TelemetryFrame f;
  if (r.get<std::uint32_t>() != kMagic) malformed("bad magic");
  const auto version = r.get<std::uint16_t>();
  if (version != kVersion) {
    malformed("unsupported version " + std::to_string(version));
  }
  f.node = r.get<std::int32_t>();
  f.seq = r.get<std::uint64_t>();
  f.ts_ns = r.get<std::uint64_t>();
  f.tasks_executed = r.get<std::uint64_t>();
  f.tasks_inflight = r.get<std::uint64_t>();
  f.queue_depth = r.get<std::uint64_t>();
  f.inflight_bytes = r.get<std::uint64_t>();
  f.cache_hits = r.get<std::uint64_t>();
  f.cache_misses = r.get<std::uint64_t>();
  f.blocks_decoded = r.get<std::uint64_t>();
  f.faults = r.get<std::uint64_t>();
  f.trace_dropped = r.get<std::uint64_t>();
  const auto njobs = r.get<std::uint32_t>();
  if (njobs > kMaxJobs || static_cast<std::uint64_t>(njobs) * 20 > r.remaining()) {
    malformed("job progress count exceeds payload");
  }
  f.jobs.reserve(njobs);
  for (std::uint32_t i = 0; i < njobs; ++i) {
    JobProgress j;
    j.job = r.get<std::uint32_t>();
    j.tasks_done = r.get<std::uint64_t>();
    j.tasks_total = r.get<std::uint64_t>();
    f.jobs.push_back(j);
  }
  f.metrics = get_snapshot(r);
  return f;
}

// ---- hub --------------------------------------------------------------------

void TelemetryHub::add(TelemetryFrame frame, std::uint64_t arrival_ns) {
  std::lock_guard lock(mutex_);
  Series& s = series_[frame.node];
  s.last_arrival_ns = arrival_ns;
  s.frames.push_back(std::move(frame));
  while (s.frames.size() > static_cast<std::size_t>(history_)) s.frames.pop_front();
  ++frames_;
}

void TelemetryHub::for_each_series(const std::function<void(int, const Series&)>& fn) const {
  std::lock_guard lock(mutex_);
  for (const auto& [node, series] : series_) fn(node, series);
}

std::map<int, TelemetryFrame> TelemetryHub::latest() const {
  std::lock_guard lock(mutex_);
  std::map<int, TelemetryFrame> out;
  for (const auto& [node, series] : series_) {
    if (!series.frames.empty()) out.emplace(node, series.frames.back());
  }
  return out;
}

std::uint64_t TelemetryHub::frames_received() const {
  std::lock_guard lock(mutex_);
  return frames_;
}

MetricsSnapshot TelemetryHub::aggregate() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  for (const auto& [node, series] : series_) {
    if (series.frames.empty()) continue;
    const TelemetryFrame& f = series.frames.back();
    out.merge(f.metrics);
    const auto counter = [&](const char* name, std::uint64_t v) {
      auto& e = out.entries[MetricsSnapshot::Key{name, node}];
      e.kind = MetricKind::Counter;
      e.count = v;
    };
    const auto gauge = [&](const char* name, double v) {
      auto& e = out.entries[MetricsSnapshot::Key{name, node}];
      e.kind = MetricKind::Gauge;
      e.value = v;
    };
    counter("telemetry.frames", f.seq + 1);
    counter("telemetry.tasks_executed", f.tasks_executed);
    gauge("telemetry.tasks_inflight", static_cast<double>(f.tasks_inflight));
    gauge("telemetry.queue_depth", static_cast<double>(f.queue_depth));
    gauge("telemetry.inflight_bytes", static_cast<double>(f.inflight_bytes));
    gauge("telemetry.cache_hit_rate", f.cache_hit_rate());
    counter("telemetry.trace_dropped", f.trace_dropped);
    for (const JobProgress& j : f.jobs) {
      const std::string prefix = "jobs.j" + std::to_string(j.job);
      auto& done = out.entries[MetricsSnapshot::Key{prefix + ".tasks_done", -1}];
      done.kind = MetricKind::Counter;
      done.count += j.tasks_done;
      auto& total = out.entries[MetricsSnapshot::Key{prefix + ".tasks_total", -1}];
      total.kind = MetricKind::Counter;
      total.count = std::max(total.count, j.tasks_total);
    }
  }
  return out;
}

// ---- health events ----------------------------------------------------------

const char* health_kind_name(HealthKind k) noexcept {
  switch (k) {
    case HealthKind::MissedHeartbeat: return "missed-heartbeat";
    case HealthKind::StalledQueue: return "stalled-queue";
    case HealthKind::Straggler: return "straggler";
    case HealthKind::Recovered: return "recovered";
  }
  return "unknown";
}

std::string HealthEvent::to_text() const {
  char buf[64];
  std::string out = std::string(health_kind_name(kind)) + " node " + std::to_string(node);
  if (job >= 0) out += " job " + std::to_string(job);
  std::snprintf(buf, sizeof(buf), " (value %.4g, threshold %.4g)", value, threshold);
  out += buf;
  if (!detail.empty()) out += ": " + detail;
  return out;
}

void emit_health_event(const HealthEvent& hev) {
  if (!trace_enabled()) return;
  Event ev;
  ev.phase = Phase::Instant;
  ev.cat = intern("health");
  ev.name = intern(health_kind_name(hev.kind));
  ev.pid = hev.node;
  ev.ts_ns = hev.ts_ns;
  ev.nargs = 3;
  ev.arg_name[0] = intern("value_f64");
  std::memcpy(&ev.arg_val[0], &hev.value, sizeof(double));
  ev.arg_name[1] = intern("threshold_f64");
  std::memcpy(&ev.arg_val[1], &hev.threshold, sizeof(double));
  ev.arg_name[2] = intern("job");
  ev.arg_val[2] = static_cast<std::uint64_t>(hev.job < 0 ? 0 : hev.job);
  TraceSession::instance().emit(ev);
}

// ---- watchdog ---------------------------------------------------------------

void Watchdog::transition(std::vector<HealthEvent>& out, int node, HealthKind kind, bool active,
                          std::uint64_t now_ns, double value, double threshold,
                          std::string detail) {
  bool& state = active_[{node, static_cast<std::uint8_t>(kind)}];
  if (active == state) return;
  state = active;
  if (kind == HealthKind::MissedHeartbeat) {
    if (active) {
      suspected_.insert(node);
    } else {
      suspected_.erase(node);
    }
  }
  HealthEvent ev;
  ev.kind = active ? kind : HealthKind::Recovered;
  ev.node = node;
  ev.ts_ns = now_ns;
  ev.value = value;
  ev.threshold = threshold;
  ev.detail = active ? std::move(detail)
                     : std::string(health_kind_name(kind)) + " cleared";
  out.push_back(std::move(ev));
}

std::vector<HealthEvent> Watchdog::poll(const TelemetryHub& hub, std::uint64_t now_ns) {
  std::vector<HealthEvent> out;
  const std::uint64_t interval = config_.interval_ns();
  const std::uint64_t miss_after =
      interval * static_cast<std::uint64_t>(config_.miss_intervals);
  const std::uint64_t stall_after =
      interval * static_cast<std::uint64_t>(config_.stall_intervals);

  // Per-node signals collected in one pass under the hub lock.
  struct NodeSignal {
    bool fresh = false;          ///< heard from recently (not a heartbeat case)
    double silence_s = 0.0;
    bool stalled = false;
    std::uint64_t stalled_span_ns = 0;
    bool busy = false;           ///< latest frame has work queued or running
    bool has_rate = false;
    double rate = 0.0;           ///< tasks / second over the rolling window
    double exec_p99 = 0.0;       ///< us; 0 = no usable histogram
  };
  std::map<int, NodeSignal> signals;

  hub.for_each_series([&](int node, const TelemetryHub::Series& s) {
    NodeSignal sig;
    const std::uint64_t silence =
        now_ns > s.last_arrival_ns ? now_ns - s.last_arrival_ns : 0;
    sig.silence_s = static_cast<double>(silence) / 1e9;
    sig.fresh = silence <= miss_after;
    if (!s.frames.empty()) {
      const TelemetryFrame& last = s.frames.back();
      sig.busy = last.tasks_inflight > 0 || last.queue_depth > 0;
      // Stall: walk back to a frame at least the stall window older; if
      // the completion count did not move over that span while work was
      // in flight, the node's executor is wedged.
      for (auto it = s.frames.rbegin(); it != s.frames.rend(); ++it) {
        if (last.ts_ns - it->ts_ns < stall_after) continue;
        if (it->tasks_executed == last.tasks_executed &&
            (last.tasks_inflight > 0 || last.queue_depth > 0)) {
          sig.stalled = true;
          sig.stalled_span_ns = last.ts_ns - it->ts_ns;
        }
        break;
      }
      // Task rate over the window (needs a span of at least one interval
      // AND at least one completion in it — a busy node that has finished
      // nothing yet is warming up or wedged; StalledQueue owns the
      // wedged case, the rate tests only judge nodes that complete work).
      const TelemetryFrame& first = s.frames.front();
      if (last.ts_ns > first.ts_ns && last.ts_ns - first.ts_ns >= interval &&
          last.tasks_executed > first.tasks_executed) {
        sig.has_rate = true;
        sig.rate = static_cast<double>(last.tasks_executed - first.tasks_executed) /
                   (static_cast<double>(last.ts_ns - first.ts_ns) / 1e9);
      }
      // Exec-time distribution: any histogram named "*.exec_us" scoped to
      // this node in the latest frame.
      for (const auto& [key, e] : last.metrics.entries) {
        if (e.kind != MetricKind::Histogram || key.node != node) continue;
        if (key.name.size() < 8 || key.name.rfind(".exec_us") != key.name.size() - 8) continue;
        if (e.hist.stats().count() < 8) continue;
        sig.exec_p99 = e.hist.quantile(0.99);
        break;
      }
    }
    signals.emplace(node, sig);
  });

  // Heartbeats and stalls are per-node verdicts.
  for (const auto& [node, sig] : signals) {
    transition(out, node, HealthKind::MissedHeartbeat, !sig.fresh, now_ns, sig.silence_s,
               static_cast<double>(miss_after) / 1e9,
               "no frame for " + std::to_string(sig.silence_s) + "s");
    transition(out, node, HealthKind::StalledQueue, sig.fresh && sig.stalled, now_ns,
               static_cast<double>(sig.stalled_span_ns) / 1e9,
               static_cast<double>(stall_after) / 1e9,
               "inflight work but no completions");
  }

  // Stragglers are relative verdicts: need >= 3 fresh *busy* nodes with
  // rates. A node with nothing queued or running is idle (likely done
  // with its share), not straggling — it neither gets flagged nor drags
  // the cluster's rate distribution down at the end of a run.
  std::vector<double> rates;
  std::vector<double> p99s;
  for (const auto& [node, sig] : signals) {
    if (sig.fresh && sig.busy && sig.has_rate) rates.push_back(sig.rate);
    if (sig.fresh && sig.exec_p99 > 0.0) p99s.push_back(sig.exec_p99);
  }
  double rate_mean = 0.0, rate_sd = 0.0, rate_median = 0.0;
  if (rates.size() >= 3) {
    for (const double r : rates) rate_mean += r;
    rate_mean /= static_cast<double>(rates.size());
    for (const double r : rates) rate_sd += (r - rate_mean) * (r - rate_mean);
    rate_sd = std::sqrt(rate_sd / static_cast<double>(rates.size()));
    std::vector<double> sorted = rates;
    std::sort(sorted.begin(), sorted.end());
    rate_median = sorted[sorted.size() / 2];
  }
  // Exec-time comparison is p99 vs the cluster's *median p99*: tails are
  // judged against everyone else's tail, so a workload where every node
  // is equally heavy-tailed flags nobody.
  double p99_median = 0.0;
  if (p99s.size() >= 3) {
    std::sort(p99s.begin(), p99s.end());
    p99_median = p99s[p99s.size() / 2];
  }

  for (const auto& [node, sig] : signals) {
    bool straggler = false;
    double value = 0.0, threshold = 0.0;
    std::string detail;
    if (sig.fresh && sig.busy && sig.has_rate && rates.size() >= 3) {
      const bool by_z = rate_sd > 1e-12 &&
                        (rate_mean - sig.rate) / rate_sd >= config_.straggler_zscore;
      const bool by_median =
          rate_median > 0.0 && sig.rate * config_.slow_factor < rate_median;
      if (by_z || by_median) {
        straggler = true;
        value = sig.rate;
        threshold = by_median ? rate_median / config_.slow_factor
                              : rate_mean - config_.straggler_zscore * rate_sd;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "task rate %.3g/s vs cluster median %.3g/s", sig.rate,
                      rate_median);
        detail = buf;
      }
    }
    if (!straggler && sig.fresh && sig.busy && sig.exec_p99 > 0.0 && p99_median > 0.0 &&
        sig.exec_p99 > config_.p99_factor * p99_median) {
      straggler = true;
      value = sig.exec_p99;
      threshold = config_.p99_factor * p99_median;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "exec p99 %.3gus vs cluster median p99 %.3gus",
                    sig.exec_p99, p99_median);
      detail = buf;
    }
    transition(out, node, HealthKind::Straggler, straggler, now_ns, value, threshold,
               std::move(detail));
  }
  return out;
}

// ---- local (in-process) telemetry -------------------------------------------

std::vector<TelemetryFrame> LocalTelemetry::frames_from_registry(int num_nodes,
                                                                 std::uint64_t seq,
                                                                 std::uint64_t ts_ns) {
  const MetricsSnapshot snap = Metrics::instance().snapshot();
  const auto counter_of = [&](const std::string& name, int node) -> std::uint64_t {
    const auto it = snap.entries.find(MetricsSnapshot::Key{name, node});
    return it != snap.entries.end() ? it->second.count : 0;
  };
  const auto gauge_of = [&](const std::string& name, int node) -> double {
    const auto it = snap.entries.find(MetricsSnapshot::Key{name, node});
    return it != snap.entries.end() ? it->second.value : 0.0;
  };
  std::vector<TelemetryFrame> frames;
  frames.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    TelemetryFrame f;
    f.node = n;
    f.seq = seq;
    f.ts_ns = ts_ns;
    f.tasks_executed = counter_of("sched.tasks_executed", n);
    f.queue_depth = static_cast<std::uint64_t>(
        std::max(0.0, gauge_of("sched.completion_queue_depth", n)));
    f.inflight_bytes =
        static_cast<std::uint64_t>(std::max(0.0, gauge_of("storage.inflight_bytes", n)));
    f.tasks_inflight = f.queue_depth;
    f.cache_hits = counter_of("storage.cache_hit", n);
    f.cache_misses = counter_of("storage.cache_miss", n);
    f.blocks_decoded = counter_of("storage.blocks_decoded", n);
    f.faults = counter_of("sched.load_faults", n);
    f.trace_dropped = counter_of("obs.trace_dropped_events", -1);
    for (const auto& [key, e] : snap.entries) {
      if (key.node == n) f.metrics.entries.emplace(key, e);
    }
    // Per-job progress (jobs.tasks_done is keyed by job id, not node) and
    // the runtime-wide entries ride on node 0's frame so a hub aggregate
    // counts them exactly once.
    if (n == 0) {
      for (const auto& [key, e] : snap.entries) {
        if (key.node < 0) f.metrics.entries.emplace(key, e);
        if (key.name == "jobs.tasks_done" && key.node >= 0) {
          JobProgress jp;
          jp.job = static_cast<std::uint32_t>(key.node);
          jp.tasks_done = e.count;
          f.jobs.push_back(jp);
        }
      }
    }
    frames.push_back(std::move(f));
  }
  return frames;
}

LocalTelemetry::LocalTelemetry(TelemetryConfig config, int num_nodes, std::string source)
    : config_(config),
      num_nodes_(num_nodes > 0 ? num_nodes : 1),
      source_(std::move(source)),
      hub_(config.history),
      watchdog_(config) {
  thread_ = std::thread([this] { thread_main(); });
}

LocalTelemetry::~LocalTelemetry() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  sample_once(TraceClock::now_ns());  // final frame so series reach the end
}

void LocalTelemetry::thread_main() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    lock.unlock();
    sample_once(TraceClock::now_ns());
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                 [this] { return stop_; });
  }
}

void LocalTelemetry::sample_once(std::uint64_t now_ns) {
  std::vector<TelemetryFrame> frames = frames_from_registry(num_nodes_, seq_, now_ns);
  for (TelemetryFrame& f : frames) hub_.add(std::move(f), now_ns);
  std::vector<HealthEvent> events;
  {
    std::lock_guard lock(mutex_);
    ++seq_;
    events = watchdog_.poll(hub_, now_ns);
    for (const HealthEvent& ev : events) events_.push_back(ev);
  }
  for (const HealthEvent& ev : events) emit_health_event(ev);
}

std::vector<HealthEvent> LocalTelemetry::health_events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::string LocalTelemetry::prometheus_text() const {
  MetricsSnapshot agg = hub_.aggregate();
  {
    std::lock_guard lock(mutex_);
    for (const HealthEvent& ev : events_) {
      const char* name = health_kind_name(ev.kind);
      auto& e = agg.entries[MetricsSnapshot::Key{std::string("health.") + name, ev.node}];
      e.kind = MetricKind::Counter;
      e.count += 1;
    }
  }
  return agg.to_prometheus();
}

}  // namespace dooc::obs::telemetry
