// Fault sweep: iterated SpMV on the (modeled) SSD testbed under increasing
// transient read-error rates, plus a bounded one-node outage — the cost of
// the recovery policy (retry backoff, re-issued fetches) as a function of
// how badly the storage tier misbehaves.
//
// The injection schedule is a pure function of the FaultPlan seed and the
// DES runs under virtual time, so every cell is deterministic: the emitted
// BENCH_fault.json diffs exactly against bench/baselines/BENCH_fault.json
// (the bench_fault_check target) on any machine.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault_plan.hpp"
#include "simcluster/testbed.hpp"

using namespace dooc;

namespace {

sim::TestbedExperiment base_experiment() {
  sim::TestbedExperiment e;
  e.nodes = 4;
  e.iterations = 4;
  return e;
}

}  // namespace

int main() {
  bench::section("Fault sweep — iterated SpMV (DES testbed, 4 nodes) vs read-error rate");

  const double rates[] = {0.0, 0.05, 0.10, 0.20, 0.40};

  bench::Table table({"read_error", "time", "slowdown", "fetch faults", "fetch retries",
                      "tasks faulted", "read BW"});
  bench::JsonReport report;
  report.meta("bench", "fault");
  report.meta("nodes", static_cast<std::uint64_t>(4));
  report.meta("iterations", static_cast<std::uint64_t>(4));

  double clean_makespan = 0.0;
  int failures = 0;
  for (const double rate : rates) {
    sim::TestbedExperiment e = base_experiment();
    if (rate > 0.0) {
      e.fault_plan = std::make_shared<fault::FaultPlan>(fault::FaultPlan::parse(
          "seed=11,read_error=" + std::to_string(rate) + ",retries=6,backoff=10ms:200ms"));
    }
    const sim::SimMetrics m = sim::run_testbed(e).metrics;
    if (rate == 0.0) clean_makespan = m.makespan;
    const double slowdown = clean_makespan > 0 ? m.makespan / clean_makespan : 1.0;

    table.add_row({bench::fmt("%.0f%%", rate * 100), bench::fmt("%.1f s", m.makespan),
                   bench::fmt("%.3fx", slowdown), std::to_string(m.fetch_faults),
                   std::to_string(m.fetch_retries), std::to_string(m.tasks_faulted),
                   bench::fmt("%.1f GB/s", m.read_bandwidth() / 1e9)});
    report.add_record()
        .field("scenario", bench::fmt("read_error_%.0f%%", rate * 100))
        .field("makespan_s", m.makespan)
        .field("slowdown", slowdown)
        .field("fetch_faults", m.fetch_faults)
        .field("fetch_retries", m.fetch_retries)
        .field("tasks_faulted", m.tasks_faulted);

    if (m.tasks_faulted != 0) {
      std::printf("FAIL: rate %.2f poisoned %llu task(s) — the 6-attempt budget should absorb\n",
                  rate, static_cast<unsigned long long>(m.tasks_faulted));
      ++failures;
    }
    if (rate > 0.0 && m.makespan < clean_makespan) {
      std::printf("FAIL: rate %.2f ran faster than fault-free (%.1f s < %.1f s)\n", rate,
                  m.makespan, clean_makespan);
      ++failures;
    }
  }
  table.print();

  bench::section("Bounded one-node outage (down=1@20+200) under the same workload");
  {
    sim::TestbedExperiment e = base_experiment();
    e.fault_plan = std::make_shared<fault::FaultPlan>(fault::FaultPlan::parse("down=1@20+200"));
    const sim::SimMetrics m = sim::run_testbed(e).metrics;
    const double slowdown = clean_makespan > 0 ? m.makespan / clean_makespan : 1.0;
    std::printf("  time %.1f s (%.3fx fault-free), tasks faulted %llu\n", m.makespan, slowdown,
                static_cast<unsigned long long>(m.tasks_faulted));
    report.add_record()
        .field("scenario", "outage_1node_200ops")
        .field("makespan_s", m.makespan)
        .field("slowdown", slowdown)
        .field("tasks_faulted", m.tasks_faulted);
    if (m.makespan < clean_makespan) {
      std::printf("FAIL: the outage run beat the fault-free run\n");
      ++failures;
    }
  }

  const std::string artifact = "BENCH_fault.json";
  if (!report.write(artifact)) {
    std::fprintf(stderr, "cannot write %s\n", artifact.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", artifact.c_str());
  if (failures != 0) {
    std::printf("%d acceptance check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("acceptance checks passed: retries degrade makespan gracefully, nothing poisons\n");
  return 0;
}
