// Shared helpers for the reproduction benches: aligned table printing,
// steady-clock timing, and the paper's reference numbers for side-by-side
// output. All timing goes through obs::TraceClock — the same monotonic
// clock that stamps trace events — so bench numbers and trace durations
// are directly comparable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace dooc::bench {

/// Monotonic nanoseconds since process start (obs::TraceClock epoch).
inline std::uint64_t now_ns() { return obs::TraceClock::now_ns(); }

/// Seconds elapsed since an earlier now_ns() stamp.
inline double seconds_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::TraceClock::now_ns() - start_ns) * 1e-9;
}

/// Time a callable, returning seconds. The result of `fn` is discarded;
/// keep side effects observable to avoid the compiler deleting the work.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const std::uint64_t t0 = now_ns();
  fn();
  return seconds_since(t0);
}

/// Fixed-width table printer: feed rows of cells, print with padding.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string();
        std::fprintf(out, "%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      std::fprintf(out, "\n");
    };
    line(header_);
    std::vector<std::string> rule;
    for (std::size_t c = 0; c < width.size(); ++c) rule.push_back(std::string(width[c], '-'));
    line(rule);
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline void section(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

}  // namespace dooc::bench
