// Shared helpers for the reproduction benches: aligned table printing,
// steady-clock timing, and the paper's reference numbers for side-by-side
// output. All timing goes through obs::TraceClock — the same monotonic
// clock that stamps trace events — so bench numbers and trace durations
// are directly comparable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace dooc::bench {

/// Monotonic nanoseconds since process start (obs::TraceClock epoch).
inline std::uint64_t now_ns() { return obs::TraceClock::now_ns(); }

/// Seconds elapsed since an earlier now_ns() stamp.
inline double seconds_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::TraceClock::now_ns() - start_ns) * 1e-9;
}

/// Time a callable, returning seconds. The result of `fn` is discarded;
/// keep side effects observable to avoid the compiler deleting the work.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const std::uint64_t t0 = now_ns();
  fn();
  return seconds_since(t0);
}

/// Fixed-width table printer: feed rows of cells, print with padding.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string();
        std::fprintf(out, "%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      std::fprintf(out, "\n");
    };
    line(header_);
    std::vector<std::string> rule;
    for (std::size_t c = 0; c < width.size(); ++c) rule.push_back(std::string(width[c], '-'));
    line(rule);
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline void section(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

/// Minimal JSON emitter for the machine-readable BENCH_*.json artifacts:
/// a top-level object of scalar metadata plus one "records" array of flat
/// objects. Values are stored pre-encoded, so insertion order is kept and
/// no JSON library is needed.
class JsonReport {
 public:
  /// Bumped whenever the report layout changes; dooc_benchdiff flags a
  /// cross-version comparison. v2 added the field itself.
  static constexpr std::uint64_t kSchemaVersion = 2;

  class Record {
   public:
    Record& field(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, quote(v));
      return *this;
    }
    Record& field(const std::string& key, const char* v) {
      return field(key, std::string(v));
    }
    Record& field(const std::string& key, double v) {
      fields_.emplace_back(key, num(v));
      return *this;
    }
    Record& field(const std::string& key, std::uint64_t v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  void meta(const std::string& key, const std::string& v) { meta_.emplace_back(key, quote(v)); }
  void meta(const std::string& key, double v) { meta_.emplace_back(key, num(v)); }
  void meta(const std::string& key, std::uint64_t v) {
    meta_.emplace_back(key, std::to_string(v));
  }

  Record& add_record() {
    records_.emplace_back();
    return records_.back();
  }

  /// Write `{meta..., "records": [...]}` to `path`; returns false on I/O error.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (!out) return false;
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema_version\": %llu,\n",
                 static_cast<unsigned long long>(kSchemaVersion));
    for (const auto& [k, v] : meta_) std::fprintf(out, "  %s: %s,\n", quote(k).c_str(), v.c_str());
    std::fprintf(out, "  \"records\": [\n");
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(out, "    {");
      const auto& fields = records_[r].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        std::fprintf(out, "%s%s: %s", f ? ", " : "", quote(fields[f].first).c_str(),
                     fields[f].second.c_str());
      }
      std::fprintf(out, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    const bool ok = std::ferror(out) == 0;
    std::fclose(out);
    return ok;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }
  static std::string num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Record> records_;
};

}  // namespace dooc::bench
