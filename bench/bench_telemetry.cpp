// Telemetry overhead + watchdog drill bench — the live-observability
// acceptance bench:
//   1 overhead  — the same 4-node DES workload with telemetry off and on
//                 (interval=250ms): virtual makespans must agree within
//                 1% (asserted; telemetry charges no modeled cost, the
//                 only slack is FP re-association from event subdivision)
//                 and the frame count is an exact function of the cadence;
//   2 straggler — one node's compute slowed 8x: the watchdog must flag
//                 exactly that node, deterministically, at a reproducible
//                 virtual detection time (asserted);
//   3 missed-hb — one node muted mid-run (the DES mirror of `kill -STOP`
//                 on a doocd): MissedHeartbeat must fire within 2 watchdog
//                 intervals of the silence threshold crossing (asserted);
//   4 realwall  — a real-engine iterated-SpMV run, telemetry off vs on
//                 (min-of-5 walls): the sampling thread must not cost more
//                 than noise. Wall fields are reported but excluded from
//                 the gate; the deterministic <1% makespan criterion is
//                 phase 1's.
//
// Phases 1-3 run under virtual time and diff exactly on any machine:
// BENCH_telemetry.json gates against bench/baselines/BENCH_telemetry.json
// via bench_telemetry_check.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/telemetry.hpp"
#include "sched/engine.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/array_creator.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"
#include "storage/storage_cluster.hpp"

using namespace dooc;
using obs::telemetry::HealthKind;
using obs::telemetry::TelemetryConfig;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what);
    ++failures;
  }
}

std::string scratch_dir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dooc_tele_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

constexpr int kNodes = 4;
constexpr int kChain = 20;
constexpr std::uint64_t kArrayBytes = 1ull << 20;

/// Per-node chains of compute tasks over durable inputs: enough virtual
/// seconds (~2.1s at 0.105s/task) for several watchdog windows.
sched::TaskGraph make_chains(solver::VirtualArrayCreator& creator, int nodes, int chain) {
  sched::TaskGraph g;
  for (int n = 0; n < nodes; ++n) {
    for (int i = 0; i < chain; ++i) {
      creator.add_durable("m" + std::to_string(n) + "_" + std::to_string(i), kArrayBytes, n);
      const std::string out = "c" + std::to_string(n) + "_" + std::to_string(i);
      creator.create(out, 8, n);
      sched::Task t;
      t.name = out;
      t.kind = "chain";
      t.inputs = {{"m" + std::to_string(n) + "_" + std::to_string(i), 0, kArrayBytes}};
      if (i > 0) t.inputs.push_back({"c" + std::to_string(n) + "_" + std::to_string(i - 1), 0, 8});
      t.outputs = {{out, 0, 8}};
      t.est_flops = 5e7;
      t.seq = i;
      t.preferred_node = n;
      g.add(std::move(t));
    }
  }
  g.build();
  return g;
}

sim::SimMetrics run_des(const sim::SimResources& res) {
  solver::VirtualArrayCreator creator;
  sched::TaskGraph g = make_chains(creator, kNodes, kChain);
  sim::SimEngine des(kNodes, res, creator.arrays());
  return des.run(g);
}

double run_real_wall(const char* tag, const char* telemetry_spec) {
  const std::string dir = scratch_dir(tag);
  if (telemetry_spec != nullptr) {
    ::setenv("DOOC_TELEMETRY", telemetry_spec, 1);
  } else {
    ::unsetenv("DOOC_TELEMETRY");
  }
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  storage::StorageCluster cluster(2, cfg);
  auto m = spmv::generate_uniform_gap(4096, 4096, 16.0, 0x7e1e);
  const auto owner = spmv::row_strip_owner(2);
  const auto deployed = spmv::deploy_matrix(cluster, m, 2, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 1e-3 * static_cast<double>(i); });
  solver::IteratedSpmvConfig config;
  config.iterations = 40;
  solver::IteratedSpmv driver(cluster, deployed, config);

  const std::uint64_t t0 = bench::now_ns();
  {
    sched::Engine engine(cluster, {});
    (void)driver.run(engine);
  }
  const double wall = bench::seconds_since(t0);
  ::unsetenv("DOOC_TELEMETRY");
  std::filesystem::remove_all(dir);
  return wall;
}

}  // namespace

int main() {
  bench::JsonReport report;
  report.meta("bench", "telemetry");
  report.meta("sim_nodes", static_cast<std::uint64_t>(kNodes));
  report.meta("chain_tasks", static_cast<std::uint64_t>(kChain));

  // -------------------------------------------------------------------------
  bench::section("Phase 1 — DES makespan overhead: telemetry off vs on");

  sim::SimResources off;
  const sim::SimMetrics m_off = run_des(off);

  sim::SimResources on;
  on.telemetry = TelemetryConfig::parse("on,interval=250");
  const sim::SimMetrics m_on = run_des(on);

  const double ratio = m_off.makespan > 0 ? m_on.makespan / m_off.makespan : 0.0;
  std::printf("  makespan off %.6f s / on %.6f s (ratio %.9f), %llu frames, %zu health events\n",
              m_off.makespan, m_on.makespan, ratio,
              static_cast<unsigned long long>(m_on.telemetry_frames), m_on.health.size());
  check(std::abs(ratio - 1.0) < 0.01, "telemetry must cost < 1% virtual makespan");
  check(m_on.health.empty(), "a healthy uniform cluster must raise no events");
  check(m_on.telemetry_frames > 0, "telemetry on must produce frames");
  report.add_record()
      .field("scenario", "overhead")
      .field("makespan_off_s", m_off.makespan)
      .field("makespan_on_s", m_on.makespan)
      .field("overhead_ratio", ratio)
      .field("telemetry_frames", m_on.telemetry_frames)
      .field("health_events", static_cast<std::uint64_t>(m_on.health.size()));

  // -------------------------------------------------------------------------
  bench::section("Phase 2 — straggler drill: node 3 computes 8x slower");

  sim::SimResources strag;
  strag.telemetry = TelemetryConfig::parse("on,interval=250,zscore=100,slow=4");
  strag.node_compute_factor[3] = 8.0;
  const sim::SimMetrics m_strag = run_des(strag);

  double detect_s = -1.0;
  int flagged = -1;
  for (const auto& ev : m_strag.health) {
    if (ev.kind == HealthKind::Straggler) {
      detect_s = static_cast<double>(ev.ts_ns) * 1e-9;
      flagged = ev.node;
      break;
    }
  }
  std::printf("  %zu health events; first straggler verdict: node %d at %.3f s\n",
              m_strag.health.size(), flagged, detect_s);
  check(flagged == 3, "the slowed node (3) must be the flagged straggler");
  check(detect_s > 0.0, "straggler must be detected during the run");
  report.add_record()
      .field("scenario", "straggler")
      .field("straggler_detected", static_cast<std::uint64_t>(flagged == 3 ? 1 : 0))
      .field("straggler_node", static_cast<std::uint64_t>(flagged < 0 ? 99 : flagged))
      .field("detect_s", detect_s)
      .field("makespan_s", m_strag.makespan)
      .field("health_events", static_cast<std::uint64_t>(m_strag.health.size()));

  // -------------------------------------------------------------------------
  bench::section("Phase 3 — missed-heartbeat drill: node 1 muted at t=0.9s");

  sim::SimResources mute;
  mute.telemetry = TelemetryConfig::parse("on,interval=250,miss=3");
  mute.node_telemetry_mute_after[1] = 0.9;
  const sim::SimMetrics m_mute = run_des(mute);

  double hb_detect_s = -1.0;
  int hb_node = -1;
  for (const auto& ev : m_mute.health) {
    if (ev.kind == HealthKind::MissedHeartbeat) {
      hb_detect_s = static_cast<double>(ev.ts_ns) * 1e-9;
      hb_node = ev.node;
      break;
    }
  }
  // Last frame before the mute lands at t=0.75; the silence threshold
  // (3 x 250ms) crosses at t=1.5; "within 2 watchdog intervals" = 2.0s.
  std::printf("  missed-heartbeat: node %d at %.3f s (threshold crossing 1.5s, budget 2.0s)\n",
              hb_node, hb_detect_s);
  check(hb_node == 1, "the muted node (1) must be the suspect");
  check(hb_detect_s > 0.0 && hb_detect_s <= 2.0,
        "missed heartbeat must fire within 2 watchdog intervals of the crossing");
  report.add_record()
      .field("scenario", "missed_heartbeat")
      .field("missed_detected", static_cast<std::uint64_t>(hb_node == 1 ? 1 : 0))
      .field("suspect_node", static_cast<std::uint64_t>(hb_node < 0 ? 99 : hb_node))
      .field("detect_s", hb_detect_s)
      .field("makespan_s", m_mute.makespan);

  // -------------------------------------------------------------------------
  bench::section("Phase 4 — real-engine wall overhead (min of 5, reported only)");

  double wall_off = 1e300;
  double wall_on = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    wall_off = std::min(wall_off, run_real_wall("off", nullptr));
    wall_on = std::min(wall_on, run_real_wall("on", "on,interval=250"));
  }
  const double wall_pct = wall_off > 0 ? (wall_on / wall_off - 1.0) * 100.0 : 0.0;
  std::printf("  wall off %.4f s / on %.4f s (%+.2f%%)%s\n", wall_off, wall_on, wall_pct,
              wall_pct < 1.0 ? " — under the 1% budget" : "");
  // Machine-dependent: a gross (10x-budget) blowup fails the bench, the
  // tight 1% criterion is asserted on phase 1's deterministic makespans.
  check(wall_pct < 10.0, "real-engine telemetry overhead grossly over budget");
  report.add_record()
      .field("scenario", "real_wall")
      .field("wall_off_s", wall_off)
      .field("wall_on_s", wall_on)
      .field("wall_overhead_pct", wall_pct);

  const std::string artifact = "BENCH_telemetry.json";
  if (!report.write(artifact)) {
    std::fprintf(stderr, "cannot write %s\n", artifact.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", artifact.c_str());
  if (failures != 0) {
    std::printf("%d acceptance check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("acceptance checks passed: overhead, straggler, missed-heartbeat, wall\n");
  return 0;
}
