// Ablation bench for the storage-layer design choices DESIGN.md calls out:
//   * eviction policy (LRU — the paper's choice — vs FIFO vs Random) on a
//     looping scan with reuse, measured in disk reloads;
//   * lookup protocol (hash-owner vs the paper's random-walk) measured in
//     peer-query hops;
//   * prefetch window depth and I/O filter count on a throttled device,
//     measured in wall time (overlap of I/O and compute).
// Real backend, local filesystem, throttled reads where noted.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sched/engine.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

namespace {

std::string scratch_dir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dooc_abl_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

void eviction_ablation() {
  bench::section("eviction policy — disk reloads on a 2-pass scan with back-and-forth reuse");
  bench::Table table({"policy", "disk reads", "bytes reloaded"});
  for (auto policy : {storage::EvictionPolicy::Lru, storage::EvictionPolicy::Fifo,
                      storage::EvictionPolicy::Random}) {
    const std::string dir = scratch_dir("evict");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.memory_budget = 6ull << 20;  // room for ~3 of 8 blocks
    cfg.eviction = policy;
    storage::StorageCluster cluster(1, cfg);
    auto& node = cluster.node(0);

    const std::string path = node.scratch_dir() + "/data";
    {
      std::ofstream out(path, std::ios::binary);
      std::vector<char> junk(16ull << 20, 'd');
      out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    node.import_file("data", path, 2ull << 20);  // 8 blocks of 2 MiB

    // Hot/cold pattern: block 0 is touched between every cold access — the
    // canonical workload separating LRU (keeps the hot block) from FIFO
    // (evicts it by age regardless of use).
    auto read_block = [&](int b) {
      auto h = node.request_read({"data", static_cast<std::uint64_t>(b) * (2ull << 20),
                                  2ull << 20})
                   .get();
    };
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 1; i < 8; ++i) {
        read_block(0);
        read_block(i);
      }
    }
    const auto stats = node.stats();
    const char* name = policy == storage::EvictionPolicy::Lru
                           ? "LRU (paper)"
                           : (policy == storage::EvictionPolicy::Fifo ? "FIFO" : "Random");
    table.add_row({name, std::to_string(stats.disk_reads),
                   format_bytes(static_cast<double>(stats.disk_read_bytes))});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(LRU keeps the hot block resident; FIFO evicts it by age and pays reloads)\n");
}

void lookup_ablation() {
  bench::section("lookup protocol — peer queries to locate remote arrays (8 nodes)");
  bench::Table table({"protocol", "lookups resolved", "total hops", "hops/lookup"});
  for (auto protocol : {storage::LookupProtocol::HashOwner, storage::LookupProtocol::RandomWalk}) {
    const std::string dir = scratch_dir("lookup");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.lookup = protocol;
    storage::StorageCluster cluster(8, cfg);
    // Node 3 owns 32 small arrays; every other node resolves all of them.
    for (int a = 0; a < 32; ++a) {
      const std::string name = "arr" + std::to_string(a);
      cluster.node(3).create_array(name, 64, 64);
      auto w = cluster.node(3).request_write({name, 0, 64}).get();
    }
    int lookups = 0;
    for (int n = 0; n < 8; ++n) {
      if (n == 3) continue;
      for (int a = 0; a < 32; ++a) {
        auto meta = cluster.node(n).array_meta("arr" + std::to_string(a));
        if (meta) ++lookups;
      }
    }
    const auto stats = cluster.total_stats();
    table.add_row({protocol == storage::LookupProtocol::HashOwner ? "hash-owner" : "random-walk (paper)",
                   std::to_string(lookups), std::to_string(stats.lookup_hops),
                   bench::fmt("%.2f", static_cast<double>(stats.lookup_hops) / lookups)});
    std::filesystem::remove_all(dir);
  }
  table.print();
}

void prefetch_ablation() {
  bench::section("prefetch window — iterated SpMV wall time on a throttled device");
  bench::Table table({"prefetch window", "wall time", "vs window 0"});
  double baseline = 0.0;
  for (int window : {0, 1, 2, 4}) {
    const std::string dir = scratch_dir("pref");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.memory_budget = 48ull << 20;
    cfg.throttle_read_bw = 120e6;  // a slow "HDD-class" device...
    cfg.io_workers = 2;            // ...with two independent channels
    storage::StorageCluster cluster(1, cfg);

    auto m = spmv::generate_uniform_gap(4096, 4096, 3.0, 0xab1);
    const auto owner = spmv::column_strip_owner(1);
    const auto deployed = spmv::deploy_matrix(cluster, m, 4, owner);
    spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                    [](std::uint64_t) { return 1.0; });

    solver::IteratedSpmvConfig config;
    config.iterations = 2;
    solver::IteratedSpmv driver(cluster, deployed, config);
    sched::EngineConfig ecfg;
    ecfg.prefetch_window = window;
    sched::Engine engine(cluster, ecfg);
    const double t = bench::time_seconds([&] { driver.run(engine); });
    if (window == 0) baseline = t;
    table.add_row({std::to_string(window), bench::fmt("%.2f s", t),
                   bench::fmt("%.0f%%", t / baseline * 100.0)});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(without read-ahead the two I/O channels idle; a window >= 1 keeps them full\n"
              " and overlaps loads with compute — the local scheduler's prefetch duty)\n");
}

void io_workers_ablation() {
  bench::section("I/O filter count — aggregate read bandwidth on a throttled device");
  bench::Table table({"I/O filters", "wall time", "effective BW"});
  for (int workers : {1, 2, 4}) {
    const std::string dir = scratch_dir("iow");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.memory_budget = 256ull << 20;
    cfg.io_workers = workers;
    cfg.throttle_read_bw = 150e6;  // per-filter throttle = per-channel device
    storage::StorageCluster cluster(1, cfg);
    auto& node = cluster.node(0);
    const std::string path = node.scratch_dir() + "/data";
    const std::uint64_t total = 64ull << 20;
    {
      std::ofstream out(path, std::ios::binary);
      std::vector<char> junk(total, 'w');
      out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    node.import_file("data", path, 4ull << 20);
    const std::uint64_t t0 = bench::now_ns();
    for (std::uint64_t b = 0; b < total / (4ull << 20); ++b) {
      node.prefetch({"data", b * (4ull << 20), 4ull << 20});
    }
    while (node.resident_bytes() < total) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const double t = bench::seconds_since(t0);
    table.add_row({std::to_string(workers), bench::fmt("%.2f s", t),
                   format_bandwidth(static_cast<double>(total) / t)});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(the paper: \"as many I/O filters as is necessary to efficiently use the\n"
              " parallelism contained in the I/O subsystem\")\n");
}

}  // namespace

int main() {
  eviction_ablation();
  lookup_ablation();
  prefetch_ablation();
  io_workers_ablation();
  return 0;
}
