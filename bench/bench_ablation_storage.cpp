// Ablation bench for the storage-layer design choices DESIGN.md calls out:
//   * eviction policy (LRU — the paper's choice — vs FIFO vs Random) on a
//     looping scan with reuse, measured in disk reloads;
//   * lookup protocol (hash-owner vs the paper's random-walk) measured in
//     peer-query hops;
//   * prefetch window depth and I/O filter count on a throttled device,
//     measured in wall time (overlap of I/O and compute).
// Real backend, local filesystem, throttled reads where noted.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/engine.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/array_creator.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/codec.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

namespace {

std::string scratch_dir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dooc_abl_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

void eviction_ablation() {
  bench::section("eviction policy — disk reloads on a 2-pass scan with back-and-forth reuse");
  bench::Table table({"policy", "disk reads", "bytes reloaded"});
  for (auto policy : {storage::EvictionPolicy::Lru, storage::EvictionPolicy::Fifo,
                      storage::EvictionPolicy::Random}) {
    const std::string dir = scratch_dir("evict");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.memory_budget = 6ull << 20;  // room for ~3 of 8 blocks
    cfg.eviction = policy;
    storage::StorageCluster cluster(1, cfg);
    auto& node = cluster.node(0);

    const std::string path = node.scratch_dir() + "/data";
    {
      std::ofstream out(path, std::ios::binary);
      std::vector<char> junk(16ull << 20, 'd');
      out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    node.import_file("data", path, 2ull << 20);  // 8 blocks of 2 MiB

    // Hot/cold pattern: block 0 is touched between every cold access — the
    // canonical workload separating LRU (keeps the hot block) from FIFO
    // (evicts it by age regardless of use).
    auto read_block = [&](int b) {
      auto h = node.request_read({"data", static_cast<std::uint64_t>(b) * (2ull << 20),
                                  2ull << 20})
                   .get();
    };
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 1; i < 8; ++i) {
        read_block(0);
        read_block(i);
      }
    }
    const auto stats = node.stats();
    const char* name = policy == storage::EvictionPolicy::Lru
                           ? "LRU (paper)"
                           : (policy == storage::EvictionPolicy::Fifo ? "FIFO" : "Random");
    table.add_row({name, std::to_string(stats.disk_reads),
                   format_bytes(static_cast<double>(stats.disk_read_bytes))});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(LRU keeps the hot block resident; FIFO evicts it by age and pays reloads)\n");
}

void lookup_ablation() {
  bench::section("lookup protocol — peer queries to locate remote arrays (8 nodes)");
  bench::Table table({"protocol", "lookups resolved", "total hops", "hops/lookup"});
  for (auto protocol : {storage::LookupProtocol::HashOwner, storage::LookupProtocol::RandomWalk}) {
    const std::string dir = scratch_dir("lookup");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.lookup = protocol;
    storage::StorageCluster cluster(8, cfg);
    // Node 3 owns 32 small arrays; every other node resolves all of them.
    for (int a = 0; a < 32; ++a) {
      const std::string name = "arr" + std::to_string(a);
      cluster.node(3).create_array(name, 64, 64);
      auto w = cluster.node(3).request_write({name, 0, 64}).get();
    }
    int lookups = 0;
    for (int n = 0; n < 8; ++n) {
      if (n == 3) continue;
      for (int a = 0; a < 32; ++a) {
        auto meta = cluster.node(n).array_meta("arr" + std::to_string(a));
        if (meta) ++lookups;
      }
    }
    const auto stats = cluster.total_stats();
    table.add_row({protocol == storage::LookupProtocol::HashOwner ? "hash-owner" : "random-walk (paper)",
                   std::to_string(lookups), std::to_string(stats.lookup_hops),
                   bench::fmt("%.2f", static_cast<double>(stats.lookup_hops) / lookups)});
    std::filesystem::remove_all(dir);
  }
  table.print();
}

void prefetch_ablation() {
  bench::section("prefetch window — iterated SpMV wall time on a throttled device");
  bench::Table table({"prefetch window", "wall time", "vs window 0"});
  double baseline = 0.0;
  for (int window : {0, 1, 2, 4}) {
    const std::string dir = scratch_dir("pref");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.memory_budget = 48ull << 20;
    cfg.throttle_read_bw = 120e6;  // a slow "HDD-class" device...
    cfg.io_workers = 2;            // ...with two independent channels
    storage::StorageCluster cluster(1, cfg);

    auto m = spmv::generate_uniform_gap(4096, 4096, 3.0, 0xab1);
    const auto owner = spmv::column_strip_owner(1);
    const auto deployed = spmv::deploy_matrix(cluster, m, 4, owner);
    spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                    [](std::uint64_t) { return 1.0; });

    solver::IteratedSpmvConfig config;
    config.iterations = 2;
    solver::IteratedSpmv driver(cluster, deployed, config);
    sched::EngineConfig ecfg;
    ecfg.prefetch_window = window;
    sched::Engine engine(cluster, ecfg);
    const double t = bench::time_seconds([&] { driver.run(engine); });
    if (window == 0) baseline = t;
    table.add_row({std::to_string(window), bench::fmt("%.2f s", t),
                   bench::fmt("%.0f%%", t / baseline * 100.0)});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(without read-ahead the two I/O channels idle; a window >= 1 keeps them full\n"
              " and overlaps loads with compute — the local scheduler's prefetch duty)\n");
}

void io_workers_ablation() {
  bench::section("I/O filter count — aggregate read bandwidth on a throttled device");
  bench::Table table({"I/O filters", "wall time", "effective BW"});
  for (int workers : {1, 2, 4}) {
    const std::string dir = scratch_dir("iow");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    cfg.memory_budget = 256ull << 20;
    cfg.io_workers = workers;
    cfg.throttle_read_bw = 150e6;  // per-filter throttle = per-channel device
    storage::StorageCluster cluster(1, cfg);
    auto& node = cluster.node(0);
    const std::string path = node.scratch_dir() + "/data";
    const std::uint64_t total = 64ull << 20;
    {
      std::ofstream out(path, std::ios::binary);
      std::vector<char> junk(total, 'w');
      out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    node.import_file("data", path, 4ull << 20);
    const std::uint64_t t0 = bench::now_ns();
    for (std::uint64_t b = 0; b < total / (4ull << 20); ++b) {
      node.prefetch({"data", b * (4ull << 20), 4ull << 20});
    }
    while (node.resident_bytes() < total) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const double t = bench::seconds_since(t0);
    table.add_row({std::to_string(workers), bench::fmt("%.2f s", t),
                   format_bandwidth(static_cast<double>(total) / t)});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(the paper: \"as many I/O filters as is necessary to efficiently use the\n"
              " parallelism contained in the I/O subsystem\")\n");
}

struct IoModeOutcome {
  double makespan = 0.0;
  double overlap = 0.0;        ///< fraction of I/O hidden behind compute
  double demand_io_us = 0.0;   ///< critical-path blame charged to demand I/O
  double predicted_noio = 0.0; ///< what-if io x0 retimed makespan, seconds
  double compute_busy = 0.0;   ///< cluster-total traced compute, seconds
  double total_flops = 0.0;    ///< sum of est_flops over the task graph
  spmv::DeployedMatrix matrix; ///< grid/nnz/bytes metadata for the DES twin
};

IoModeOutcome run_io_mode(bool blocking_io, double throttle_bw, sched::LocalPolicy policy,
                          bool barrier) {
  const std::string dir = scratch_dir(blocking_io ? "blkio" : "cmpio");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  // Quickstart-scale workload squeezed into a budget that forces the
  // back-and-forth reloads every iteration, on a throttled device — the
  // regime where hiding I/O behind compute decides the makespan.
  cfg.memory_budget = 8ull << 20;
  cfg.throttle_read_bw = throttle_bw;
  storage::StorageCluster cluster(3, cfg);

  auto m = spmv::generate_uniform_gap(4096, 4096, 4.0, 2012);
  const auto owner = spmv::row_strip_owner(3);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });

  solver::IteratedSpmvConfig config;
  config.iterations = 4;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = barrier;
  solver::IteratedSpmv driver(cluster, deployed, config);

  sched::EngineConfig ecfg;
  ecfg.blocking_io = blocking_io;
  ecfg.local_policy = policy;

  obs::TraceSession::instance().start();
  sched::Engine engine(cluster, ecfg);
  IoModeOutcome out;
  {
    // Background sampler flushes the metrics registry into the trace as
    // Counter events while the run is live (the same gauges dooc_tracecat
    // --metrics exports); its destructor takes a final sample.
    obs::MetricsSampler sampler(std::chrono::milliseconds(5));
    out.makespan = bench::time_seconds([&] { driver.run(engine); });
  }
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();

  // Round-trip through the Chrome JSON exporter and the trace reader — the
  // same pipeline dooc_tracecat uses. Overlap is computed per node (each
  // node has its own device and its own compute slot) and aggregated as
  // total hidden I/O time over total I/O time, so cross-node span unions
  // don't blur the comparison.
  const std::vector<obs::ParsedEvent> parsed =
      obs::parse_chrome_trace(obs::chrome_trace_json(events));
  double io_total = 0.0;
  double io_hidden = 0.0;
  double compute_total = 0.0;
  for (int node = 0; node < 3; ++node) {
    std::vector<obs::ParsedEvent> local;
    for (const auto& ev : parsed) {
      if (ev.pid == node) local.push_back(ev);
    }
    const obs::TraceSummary s = obs::summarize(local);
    io_total += s.io_busy_us;
    io_hidden += s.io_overlapped_us;
    compute_total += s.compute_busy_us;
  }
  out.overlap = io_total > 0.0 ? io_hidden / io_total : 0.0;

  // Causal view of the same trace: rebuild the producer->consumer DAG from
  // the flow events and ask where the critical path spends its time. The
  // blocking ablation surfaces its stalls as "wait-inputs" spans (demand
  // I/O); the completion-driven path surfaces loads as flow instances whose
  // compute-overlapped part is prefetch-shadowed.
  const obs::causal::CausalGraph graph = obs::causal::CausalGraph::build(parsed);
  const obs::causal::Blame blame = graph.blame();
  out.demand_io_us = blame.get(obs::causal::kBlameDemandIo);
  out.predicted_noio = graph.what_if("io", 0.0) * 1e-6;
  out.compute_busy = compute_total * 1e-6;
  for (sched::TaskId t = 0; t < driver.graph().size(); ++t) {
    out.total_flops += driver.graph().task(t).est_flops;
  }
  out.matrix = deployed;

  std::printf(
      "  [%s %s %s] wall %.3fs io_busy %.1fms compute_busy %.1fms overlap %.2f%% "
      "demand-io blame %.1fms what-if(io:0) %.3fs\n",
      blocking_io ? "blk" : "cmp", policy == sched::LocalPolicy::Fifo ? "fifo" : "dataaware",
      barrier ? "barrier" : "async", out.makespan, io_total / 1e3, compute_total / 1e3,
      100.0 * out.overlap, out.demand_io_us / 1e3, out.predicted_noio);
  std::filesystem::remove_all(dir);
  return out;
}

/// Lower bound for the what-if(io:0) bracket: the same task graph run on
/// the DES backend with storage made free (infinite bandwidth and memory,
/// zero overheads) and compute calibrated *optimistically* at twice the
/// measured effective flop rate. Anything the retimed real DAG predicts
/// must sit above this simulated floor and below the measured makespan.
double des_noio_makespan(const IoModeOutcome& ref) {
  const auto& deployed = ref.matrix;
  const int k = deployed.grid.k();
  solver::VirtualArrayCreator creator;
  for (int u = 0; u < k; ++u) {
    for (int v = 0; v < k; ++v) {
      creator.add_durable(deployed.name_of(u, v), deployed.bytes_of(u, v),
                          deployed.owner_of(u, v));
    }
    creator.add_durable(spmv::BlockGrid::vector_name("x", 0, u),
                        deployed.grid.part_size(u) * sizeof(double), u);
  }

  solver::IteratedSpmvConfig config;
  config.iterations = 4;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = false;
  solver::IteratedSpmv driver(creator, deployed, config);

  const double measured_rate =
      ref.compute_busy > 0.0 ? ref.total_flops / ref.compute_busy : 1e9;
  sim::SimResources res;
  res.node_memory = 1ull << 40;    // everything resident: no evictions
  res.node_read_cap = 1e15;        // storage is free
  res.aggregate_read_cap = 1e15;
  res.ib_link = 1e15;
  res.mem_bw = 1e15;               // reductions charge nothing
  res.compute_rate = 2.0 * measured_rate;
  res.task_overhead = 0.0;
  res.sync_cost = 0.0;
  res.bw_noise = 0.0;
  res.compute_slots = 1;           // matches EngineConfig::compute_slots_per_node
  sim::SimEngine sim(k, res, creator.arrays());
  return sim.run(driver.graph(), sched::LocalPolicy::DataAware).makespan;
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

bool blocking_io_ablation() {
  bench::section("I/O completion model — blocking future::get() vs completion-driven workers");
  // Fully asynchronous iterations (no inter-iteration barrier — the regime
  // Fig. 5(b) draws) widen the ready frontier, which is exactly where a
  // worker committing to one task and blocking on its load hurts: resident
  // work sits idle behind the stalled slot. Three reps per mode,
  // interleaved; medians reported so a cold-cache first run can't skew the
  // comparison either way.
  IoModeOutcome blk[3];
  IoModeOutcome cmp[3];
  for (int rep = 0; rep < 3; ++rep) {
    blk[rep] = run_io_mode(true, 120e6, sched::LocalPolicy::DataAware, false);
    cmp[rep] = run_io_mode(false, 120e6, sched::LocalPolicy::DataAware, false);
  }
  IoModeOutcome blocking;
  blocking.makespan = median3(blk[0].makespan, blk[1].makespan, blk[2].makespan);
  blocking.overlap = median3(blk[0].overlap, blk[1].overlap, blk[2].overlap);
  blocking.demand_io_us = median3(blk[0].demand_io_us, blk[1].demand_io_us, blk[2].demand_io_us);
  IoModeOutcome completion;
  completion.makespan = median3(cmp[0].makespan, cmp[1].makespan, cmp[2].makespan);
  completion.overlap = median3(cmp[0].overlap, cmp[1].overlap, cmp[2].overlap);
  completion.demand_io_us =
      median3(cmp[0].demand_io_us, cmp[1].demand_io_us, cmp[2].demand_io_us);
  completion.predicted_noio =
      median3(cmp[0].predicted_noio, cmp[1].predicted_noio, cmp[2].predicted_noio);

  bench::Table table({"mode", "wall time (median/3)", "I/O hidden behind compute",
                      "demand-I/O blame"});
  table.add_row({"blocking (ablation)", bench::fmt("%.2f s", blocking.makespan),
                 bench::fmt("%.2f%%", 100.0 * blocking.overlap),
                 bench::fmt("%.1f ms", blocking.demand_io_us / 1e3)});
  table.add_row({"completion-driven", bench::fmt("%.2f s", completion.makespan),
                 bench::fmt("%.2f%%", 100.0 * completion.overlap),
                 bench::fmt("%.1f ms", completion.demand_io_us / 1e3)});
  table.print();
  std::printf("(completion-driven compute workers never block on a load: picked tasks park\n"
              " InputsPending while their reads are in flight and the worker runs whatever\n"
              " is resident — the blocking mode stalls its only compute slot instead)\n");

  // Acceptance shape: the completion-driven path must hide strictly more of
  // its I/O and not pay for it in makespan (10% tolerance for wall noise).
  const bool overlap_better = completion.overlap > blocking.overlap;
  const bool makespan_ok = completion.makespan <= blocking.makespan * 1.10;
  std::printf("\ncompletion-driven overlap %.2f%% > blocking %.2f%%: %s\n",
              100.0 * completion.overlap, 100.0 * blocking.overlap,
              overlap_better ? "YES" : "NO");
  std::printf("completion-driven makespan %.2f s <= blocking %.2f s (+10%%): %s\n",
              completion.makespan, blocking.makespan, makespan_ok ? "YES" : "NO");

  // Causal acceptance 1 — the blame shift: the blocking ablation's critical
  // path must carry strictly more demand-I/O time than the completion-driven
  // path (whose loads hide behind compute or disappear from the path).
  const bool blame_shift = completion.demand_io_us < blocking.demand_io_us;
  std::printf("blame shift: completion demand-I/O %.1f ms < blocking %.1f ms: %s\n",
              completion.demand_io_us / 1e3, blocking.demand_io_us / 1e3,
              blame_shift ? "YES" : "NO");

  // Causal acceptance 2 — the what-if(io:0) bracket: retiming the real DAG
  // with free storage must land between an optimistic DES floor (same graph,
  // free storage, 2x the measured flop rate) and the measured makespan.
  const double des_floor = des_noio_makespan(cmp[0]);
  const bool bracket_ok =
      des_floor <= completion.predicted_noio && completion.predicted_noio <= completion.makespan;
  std::printf("what-if(io:0) bracket: DES floor %.3f s <= predicted %.3f s <= measured %.3f s: %s\n",
              des_floor, completion.predicted_noio, completion.makespan,
              bracket_ok ? "YES" : "NO");
  return overlap_better && makespan_ok && blame_shift && bracket_ok;
}

struct CodecOutcome {
  double makespan = 0.0;
  double demand_io_us = 0.0;   ///< critical-path blame charged to demand I/O
  double decode_us = 0.0;      ///< critical-path blame charged to decode
  double ratio = 1.0;          ///< achieved on-disk compression ratio
  std::vector<double> result;  ///< gathered final iterate
};

CodecOutcome run_codec_mode(const spmv::codec::CodecConfig& codec, double throttle_bw) {
  const std::string dir = scratch_dir(codec.enabled() ? "codec" : "rawio");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  // Same squeeze as the blocking-I/O ablation: every iteration reloads the
  // matrix from a throttled device, so the bytes a demand load moves decide
  // the makespan — the regime the codec trades CPU to win.
  cfg.memory_budget = 8ull << 20;
  cfg.throttle_read_bw = throttle_bw;
  cfg.codec = codec;
  storage::StorageCluster cluster(3, cfg);

  // Power-law columns (clustered deltas = compressible index stream), sized
  // ~45 MB so the 8 MB budget forces per-iteration reloads like the
  // blocking-I/O ablation above.
  auto m = spmv::generate_power_law(4096, 4096, 900.0, 1.5, 2012);
  const auto owner = spmv::row_strip_owner(3);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });

  solver::IteratedSpmvConfig config;
  config.iterations = 4;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = false;
  solver::IteratedSpmv driver(cluster, deployed, config);

  obs::TraceSession::instance().start();
  sched::Engine engine(cluster, sched::EngineConfig{});
  CodecOutcome out;
  out.makespan = bench::time_seconds([&] { driver.run(engine); });
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();
  out.result = driver.gather_result();
  out.ratio = deployed.compression_ratio();

  const obs::causal::CausalGraph graph =
      obs::causal::CausalGraph::build(obs::parse_chrome_trace(obs::chrome_trace_json(events)));
  const obs::causal::Blame blame = graph.blame();
  out.demand_io_us = blame.get(obs::causal::kBlameDemandIo);
  out.decode_us = blame.get(obs::causal::kBlameDecode);

  std::printf("  [%s] wall %.3fs ratio %.2fx demand-io blame %.1fms decode blame %.1fms\n",
              spmv::codec::mode_name(codec.mode), out.makespan, out.ratio,
              out.demand_io_us / 1e3, out.decode_us / 1e3);
  std::filesystem::remove_all(dir);
  return out;
}

bool codec_ablation() {
  bench::section("block codec — demand-I/O blame and makespan, raw vs adaptive (throttled)");
  // Interleaved reps, medians, same shape as the blocking-I/O ablation.
  CodecOutcome raw[3];
  CodecOutcome enc[3];
  spmv::codec::CodecConfig adaptive;
  adaptive.mode = spmv::codec::Mode::Adaptive;
  // Depth-2 read-ahead: decode of block k overlaps the read of block k+1,
  // so the decode cost hides behind the throttled device instead of
  // serializing after it.
  adaptive.read_ahead = 2;
  // 60 MB/s device: the bandwidth-starved regime the codec targets — the
  // decoder (~0.5 GB/s) is an order of magnitude faster than the device, so
  // reading ~25% fewer bytes beats the decode cost it buys.
  for (int rep = 0; rep < 3; ++rep) {
    raw[rep] = run_codec_mode(spmv::codec::CodecConfig{}, 60e6);
    enc[rep] = run_codec_mode(adaptive, 60e6);
  }
  CodecOutcome r;
  r.makespan = median3(raw[0].makespan, raw[1].makespan, raw[2].makespan);
  r.demand_io_us = median3(raw[0].demand_io_us, raw[1].demand_io_us, raw[2].demand_io_us);
  CodecOutcome c;
  c.makespan = median3(enc[0].makespan, enc[1].makespan, enc[2].makespan);
  c.demand_io_us = median3(enc[0].demand_io_us, enc[1].demand_io_us, enc[2].demand_io_us);
  c.decode_us = median3(enc[0].decode_us, enc[1].decode_us, enc[2].decode_us);
  c.ratio = enc[0].ratio;

  bench::Table table({"codec", "wall time (median/3)", "demand-I/O blame", "decode blame",
                      "on-disk ratio"});
  table.add_row({"off (raw)", bench::fmt("%.2f s", r.makespan),
                 bench::fmt("%.1f ms", r.demand_io_us / 1e3), "-", "1.00x"});
  table.add_row({"adaptive", bench::fmt("%.2f s", c.makespan),
                 bench::fmt("%.1f ms", c.demand_io_us / 1e3),
                 bench::fmt("%.1f ms", c.decode_us / 1e3), bench::fmt("%.2fx", c.ratio)});
  table.print();
  std::printf("(compressed blocks move fewer bytes through the throttled device; the decode\n"
              " cost surfaces as its own blame category instead of inflating demand I/O)\n");

  // Acceptance: numerics identical, demand-I/O blame strictly lower, and
  // the makespan no worse (10% tolerance for wall noise).
  bool bitwise = true;
  for (int rep = 0; rep < 3; ++rep) {
    bitwise = bitwise && raw[rep].result.size() == enc[rep].result.size() &&
              std::memcmp(raw[rep].result.data(), enc[rep].result.data(),
                          raw[rep].result.size() * sizeof(double)) == 0;
  }
  const bool blame_shift = c.demand_io_us < r.demand_io_us;
  const bool makespan_ok = c.makespan <= r.makespan * 1.10;
  std::printf("\nsolver results bitwise identical across all reps: %s\n", bitwise ? "YES" : "NO");
  std::printf("blame shift: adaptive demand-I/O %.1f ms < raw %.1f ms: %s\n",
              c.demand_io_us / 1e3, r.demand_io_us / 1e3, blame_shift ? "YES" : "NO");
  std::printf("adaptive makespan %.2f s <= raw %.2f s (+10%%): %s\n", c.makespan, r.makespan,
              makespan_ok ? "YES" : "NO");
  return bitwise && blame_shift && makespan_ok;
}

}  // namespace

int main() {
  eviction_ablation();
  lookup_ablation();
  prefetch_ablation();
  io_workers_ablation();
  const bool io_model_ok = blocking_io_ablation();
  const bool codec_ok = codec_ablation();
  return io_model_ok && codec_ok ? 0 : 1;
}
