// Table II reproduction: performance of 99 Lanczos iterations of MFDn on
// Hopper — total time, communication fraction and CPU-hour cost per
// iteration — from the calibrated in-core cost model (perfmodel/).
#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/hopper_model.hpp"

using namespace dooc;

int main() {
  bench::section("Table II — MFDn on Hopper (calibrated in-core model vs paper)");

  const auto model = perfmodel::HopperModel::calibrated();
  std::printf("calibrated coefficients: c_nnz=%.3e  c_row=%.3e  c_vol=%.3e  c_sync=%.3e\n\n",
              model.c_nnz(), model.c_row(), model.c_vol(), model.c_sync());

  bench::Table table({"case", "np", "t_total(99) paper", "model", "comm%% paper", "model",
                      "CPU-h/iter paper", "model"});
  const double paper_cpuh[] = {0.19, 1.72, 9.70, 96.2};
  int i = 0;
  for (const auto& c : perfmodel::hopper_reference()) {
    const auto p = model.predict(c.dimension, c.nnz, c.np);
    table.add_row({c.name, std::to_string(c.np), bench::fmt("%.0f s", c.t_total_99),
                   bench::fmt("%.0f s", p.t_iter() * 99.0),
                   bench::fmt("%.0f%%", c.comm_fraction * 100.0),
                   bench::fmt("%.0f%%", p.comm_fraction() * 100.0),
                   bench::fmt("%.2f", paper_cpuh[i]),
                   bench::fmt("%.2f", p.cpu_hours_per_iter(c.np))});
    ++i;
  }
  table.print();

  bench::section("extrapolation: hypothetical larger runs (model only)");
  bench::Table extra({"np", "D", "nnz", "t/iter", "comm%%", "CPU-h/iter"});
  // 14C at Nmax=10 scale (the paper's "out of reach" case, ~200 TB of H).
  const double big_nnz = 2.0e13;
  const double big_d = 1.0e10;
  for (int np : {18336, 73920, 125250}) {  // 191, 384, 500 triangular grids
    const auto p = model.predict(big_d, big_nnz, np);
    extra.add_row({std::to_string(np), bench::fmt("%.1e", big_d), bench::fmt("%.1e", big_nnz),
                   bench::fmt("%.1f s", p.t_iter()), bench::fmt("%.0f%%", p.comm_fraction() * 100),
                   bench::fmt("%.1f", p.cpu_hours_per_iter(np))});
  }
  extra.print();
  std::printf("\nThe model reproduces the paper's headline: at ~18k cores, communication\n"
              "dominates a Lanczos iteration (>80%%), motivating the out-of-core approach.\n");
  return 0;
}
