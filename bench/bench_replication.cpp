// Hot-block replication sweep: a skewed-popularity workload (one hot block
// re-read by every node each round, a cold scan large enough to flush it
// under plain LRU) run on the real engine with DOOC_REPLICATION off vs on,
// plus the same policy replayed at paper scale on the DES backend.
//
// Acceptance shape (gated by bench_replication_check):
//   * solver outputs bitwise identical with replication on (parity_ok);
//   * demand-I/O causal blame strictly lower with replication on
//     (blame_shift_ok) and makespan no worse (makespan_ok);
//   * replica traffic actually observed: promotions and replica hits > 0;
//   * DES replay: replication on is deterministic and no slower (des fields
//     diff exactly — virtual time, access-count heat epochs, no wall clock).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/causal.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/engine.hpp"
#include "simcluster/testbed.hpp"
#include "storage/storage_cluster.hpp"

using namespace dooc;

namespace {

constexpr int kNodes = 3;
constexpr int kRounds = 6;
constexpr int kColds = 24;
constexpr std::uint64_t kHotBytes = 2ull << 20;
constexpr std::uint64_t kColdBytes = 1ull << 20;

std::string scratch_dir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dooc_repl_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

void import_array(storage::StorageNode& node, const std::string& name, std::uint64_t bytes,
                  std::uint64_t seed) {
  std::filesystem::create_directories(node.scratch_dir());
  const std::string path = node.scratch_dir() + "/" + name + ".src";
  std::vector<std::uint64_t> vals(bytes / 8);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (auto& v : vals) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = x;
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(vals.data()), static_cast<std::streamsize>(bytes));
  }
  node.import_file(name, path, bytes);  // one block per array
}

struct Outcome {
  double makespan = 0.0;
  double demand_io_us = 0.0;
  storage::StorageStats stats;
  std::vector<std::uint64_t> results;  ///< every task output, in graph order
};

/// One skewed-popularity run. Round structure (rounds serialized by an
/// 8-byte gate array): every node re-reads the shared hot block, then the
/// round's cold scan (24 x 1 MB across 3 nodes vs a 6 MB budget) flushes
/// node memory. Under LRU the hot block is gone again by the next round;
/// under the frequency-aware policy it is promoted, replicated onto its
/// consumers and protected from the scan.
Outcome run_skewed(const std::string& replication_spec) {
  const std::string dir = scratch_dir(replication_spec.empty() ? "off" : "on");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  cfg.memory_budget = 6ull << 20;
  cfg.throttle_read_bw = 60e6;  // slow device: every reload is expensive
  cfg.replication = storage::ReplicationConfig::parse(replication_spec);
  storage::StorageCluster cluster(kNodes, cfg);

  import_array(cluster.node(0), "hot", kHotBytes, 7);
  for (int i = 0; i < kColds; ++i) {
    import_array(cluster.node(i % kNodes), "cold" + std::to_string(i), kColdBytes,
                 100 + static_cast<std::uint64_t>(i));
  }

  sched::TaskGraph g;
  const auto out_name = [](const char* kind, int r, int i) {
    return std::string(kind) + "_" + std::to_string(r) + "_" + std::to_string(i);
  };
  std::vector<std::string> out_order;
  for (int r = 0; r < kRounds; ++r) {
    const std::string gate = "gate_" + std::to_string(r);
    std::vector<storage::Interval> gate_inputs;
    for (int n = 0; n < kNodes; ++n) {
      const std::string out = out_name("hot_out", r, n);
      cluster.node(n).create_array(out, 8, 8);
      sched::Task t;
      t.name = out;
      t.kind = "hot-read";
      t.inputs = {{"hot", 0, kHotBytes}};
      if (r > 0) t.inputs.push_back({"gate_" + std::to_string(r - 1), 0, 8});
      t.outputs = {{out, 0, 8}};
      t.group = r;
      t.seq = n;
      t.preferred_node = n;
      t.work = [](sched::TaskContext& ctx) {
        // Checksum strided through the whole block: a stale replica (or a
        // torn fetch) changes the sum, so parity below catches it.
        const auto in = ctx.input(0).as<std::uint64_t>();
        std::uint64_t sum = 0;
        for (std::size_t k = 0; k < in.size(); k += 512) sum += in[k];
        ctx.output(0).as<std::uint64_t>()[0] = sum;
      };
      gate_inputs.push_back({out, 0, 8});
      out_order.push_back(out);
      g.add(std::move(t));
    }
    for (int i = 0; i < kColds; ++i) {
      const std::string out = out_name("cold_out", r, i);
      cluster.node(i % kNodes).create_array(out, 8, 8);
      sched::Task t;
      t.name = out;
      t.kind = "cold-scan";
      t.inputs = {{"cold" + std::to_string(i), 0, kColdBytes}};
      if (r > 0) t.inputs.push_back({"gate_" + std::to_string(r - 1), 0, 8});
      t.outputs = {{out, 0, 8}};
      t.group = r;
      t.seq = kNodes + i;
      t.preferred_node = i % kNodes;
      t.work = [](sched::TaskContext& ctx) {
        const auto in = ctx.input(0).as<std::uint64_t>();
        std::uint64_t sum = 0;
        for (std::size_t k = 0; k < in.size(); k += 512) sum += in[k];
        ctx.output(0).as<std::uint64_t>()[0] = sum;
      };
      gate_inputs.push_back({out, 0, 8});
      out_order.push_back(out);
      g.add(std::move(t));
    }
    cluster.node(0).create_array(gate, 8, 8);
    sched::Task t;
    t.name = gate;
    t.kind = "gate";
    t.inputs = std::move(gate_inputs);
    t.outputs = {{gate, 0, 8}};
    t.group = r;
    t.seq = kNodes + kColds;
    t.preferred_node = 0;
    t.work = [](sched::TaskContext& ctx) {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
        sum += ctx.input(i).as<std::uint64_t>()[0];
      }
      ctx.output(0).as<std::uint64_t>()[0] = sum;
    };
    out_order.push_back(gate);
    g.add(std::move(t));
  }
  g.build();

  obs::TraceSession::instance().start();
  // Blocking I/O mode so every demand stall surfaces as a "wait-inputs"
  // span on the worker lane — the causal walk then charges it to demand-io
  // (the same technique bench_ablation_storage uses to expose the
  // completion-model trade). In completion-driven mode the stalls hide in
  // scheduler gaps and the blame shift would be invisible.
  sched::EngineConfig ecfg;
  ecfg.blocking_io = true;
  sched::Engine engine(cluster, ecfg);
  Outcome out;
  out.makespan = bench::time_seconds([&] { engine.run(g); });
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();

  const obs::causal::CausalGraph graph =
      obs::causal::CausalGraph::build(obs::parse_chrome_trace(obs::chrome_trace_json(events)));
  out.demand_io_us = graph.blame().get(obs::causal::kBlameDemandIo);
  out.stats = cluster.total_stats();
  for (const std::string& name : out_order) {
    out.results.push_back(cluster.node(0).request_read({name, 0, 8}).get().as<std::uint64_t>()[0]);
  }

  std::printf("  [%s] wall %.3fs demand-io blame %.1fms disk reads %llu replica hits %llu "
              "promotions %llu\n",
              replication_spec.empty() ? "off" : "on ", out.makespan, out.demand_io_us / 1e3,
              static_cast<unsigned long long>(out.stats.disk_reads),
              static_cast<unsigned long long>(out.stats.replica_hits),
              static_cast<unsigned long long>(out.stats.replica_promotions));
  std::filesystem::remove_all(dir);
  return out;
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main() {
  bench::JsonReport report;
  report.meta("bench", "replication");

  bench::section("skewed-popularity sweep — real engine, hot block vs LRU-flushing cold scan");
  std::printf("  (%d nodes, %d rounds, hot %llu MB re-read per node per round, cold scan "
              "%d x %llu MB, 6 MB budget, 60 MB/s device)\n",
              kNodes, kRounds, static_cast<unsigned long long>(kHotBytes >> 20), kColds,
              static_cast<unsigned long long>(kColdBytes >> 20));

  // Interleaved reps, medians — same discipline as the codec ablation so a
  // cold first run can't skew either mode.
  const std::string on_spec = "on,hot_threshold=2,decay=1048576";
  Outcome off[3];
  Outcome on[3];
  for (int rep = 0; rep < 3; ++rep) {
    off[rep] = run_skewed("");
    on[rep] = run_skewed(on_spec);
  }
  const double off_wall = median3(off[0].makespan, off[1].makespan, off[2].makespan);
  const double on_wall = median3(on[0].makespan, on[1].makespan, on[2].makespan);
  const double off_blame =
      median3(off[0].demand_io_us, off[1].demand_io_us, off[2].demand_io_us);
  const double on_blame = median3(on[0].demand_io_us, on[1].demand_io_us, on[2].demand_io_us);

  bench::Table table({"replication", "wall time (median/3)", "demand-I/O blame", "disk reads",
                      "replica hits", "promotions", "bypass"});
  table.add_row({"off", bench::fmt("%.2f s", off_wall), bench::fmt("%.1f ms", off_blame / 1e3),
                 std::to_string(off[0].stats.disk_reads), "-", "-", "-"});
  table.add_row({"on", bench::fmt("%.2f s", on_wall), bench::fmt("%.1f ms", on_blame / 1e3),
                 std::to_string(on[0].stats.disk_reads),
                 std::to_string(on[0].stats.replica_hits),
                 std::to_string(on[0].stats.replica_promotions),
                 std::to_string(on[0].stats.replica_bypass)});
  table.print();
  std::printf("(off: every round's cold scan flushes the hot block and each node re-reads it\n"
              " from the throttled device; on: the block crosses the hot threshold, replicates\n"
              " onto its consumers and sits in the 2Q-protected class — demand I/O leaves the\n"
              " critical path)\n");

  // Acceptance 1: bitwise-identical results. Replication must be invisible
  // to the numerics — same sums in every rep, both modes.
  bool parity = true;
  for (int rep = 0; rep < 3; ++rep) {
    parity = parity && off[rep].results == on[rep].results && off[rep].results == off[0].results;
  }
  // Acceptance 2: the blame shift, strictly.
  const bool blame_shift = on_blame < off_blame;
  // Acceptance 3: makespan no worse (10% wall-noise tolerance).
  const bool makespan_ok = on_wall <= off_wall * 1.10;
  // Acceptance 4: the mechanism actually engaged.
  const bool traffic =
      on[0].stats.replica_promotions > 0 && on[0].stats.replica_hits > 0 &&
      off[0].stats.replica_hits == 0;

  std::printf("\nresults bitwise identical across modes and reps: %s\n", parity ? "YES" : "NO");
  std::printf("blame shift: on %.1f ms < off %.1f ms: %s\n", on_blame / 1e3, off_blame / 1e3,
              blame_shift ? "YES" : "NO");
  std::printf("makespan: on %.2f s <= off %.2f s (+10%%): %s\n", on_wall, off_wall,
              makespan_ok ? "YES" : "NO");
  std::printf("replica traffic observed (promotions %llu, hits %llu): %s\n",
              static_cast<unsigned long long>(on[0].stats.replica_promotions),
              static_cast<unsigned long long>(on[0].stats.replica_hits),
              traffic ? "YES" : "NO");

  report.meta("parity_ok", static_cast<std::uint64_t>(parity ? 1 : 0));
  report.meta("blame_shift_ok", static_cast<std::uint64_t>(blame_shift ? 1 : 0));
  report.meta("makespan_ok", static_cast<std::uint64_t>(makespan_ok ? 1 : 0));
  report.meta("replica_traffic_ok", static_cast<std::uint64_t>(traffic ? 1 : 0));
  report.meta("off_wall_s", off_wall);
  report.meta("on_wall_s", on_wall);
  report.meta("off_demand_io_ms", off_blame / 1e3);
  report.meta("on_demand_io_ms", on_blame / 1e3);
  report.meta("real_replica_hits", on[0].stats.replica_hits);
  report.meta("real_replica_promotions", on[0].stats.replica_promotions);
  report.meta("real_replica_bypass", on[0].stats.replica_bypass);

  bench::section("DES replay — paper-scale testbed, replication off vs on (virtual time)");
  sim::TestbedExperiment e;
  e.nodes = 4;
  sim::SimResources base;
  base.bw_noise = 0.0;  // isolate the policy from noise-draw reordering
  const auto des_off = sim::run_testbed(e, base);
  sim::SimResources repl = base;
  repl.replication = storage::ReplicationConfig::parse(on_spec);
  const auto des_on = sim::run_testbed(e, repl);

  bench::Table des({"replication", "makespan", "GPFS read", "replica hits", "promotions",
                    "re-fetch flows"});
  des.add_row({"off", bench::fmt("%.1f s", des_off.metrics.makespan),
               format_bytes(static_cast<double>(des_off.metrics.disk_bytes)), "-", "-",
               std::to_string(des_off.metrics.refetch_flows)});
  des.add_row({"on", bench::fmt("%.1f s", des_on.metrics.makespan),
               format_bytes(static_cast<double>(des_on.metrics.disk_bytes)),
               std::to_string(des_on.metrics.replica_hits),
               std::to_string(des_on.metrics.hot_promotions),
               std::to_string(des_on.metrics.refetch_flows)});
  des.print();

  const bool des_ok = des_on.metrics.makespan <= des_off.metrics.makespan * 1.0001 &&
                      des_on.metrics.hot_promotions > 0;
  std::printf("\nDES makespan on %.1f s <= off %.1f s and promotions > 0: %s\n",
              des_on.metrics.makespan, des_off.metrics.makespan, des_ok ? "YES" : "NO");
  report.meta("des_makespan_ok", static_cast<std::uint64_t>(des_ok ? 1 : 0));

  for (const bool repl_on : {false, true}) {
    const auto& m = repl_on ? des_on.metrics : des_off.metrics;
    report.add_record()
        .field("config", repl_on ? "des-replication-on" : "des-replication-off")
        .field("nodes", static_cast<std::uint64_t>(e.nodes))
        .field("makespan_s", m.makespan)
        .field("disk_gb", static_cast<double>(m.disk_bytes) / 1e9)
        .field("replica_hits", m.replica_hits)
        .field("hot_promotions", m.hot_promotions)
        .field("refetch_flows", m.refetch_flows);
  }

  const int failures =
      (parity ? 0 : 1) + (blame_shift ? 0 : 1) + (makespan_ok ? 0 : 1) + (traffic ? 0 : 1) +
      (des_ok ? 0 : 1);

  const std::string artifact = "BENCH_replication.json";
  if (!report.write(artifact)) {
    std::printf("FAILED to write %s\n", artifact.c_str());
    return 1;
  }
  std::printf("wrote %s\n", artifact.c_str());
  return failures == 0 ? 0 : 1;
}
