// Table III + Fig. 6(a) reproduction: iterated SpMV on the (modeled) SSD
// testbed under the simple scheduling policy — all local SpMVs first, then
// partial results reduced on the first processor of each row, with global
// synchronizations after each phase.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "simcluster/testbed.hpp"

using namespace dooc;

int main() {
  bench::section("Table III — SSD testbed, simple scheduling policy (DES) vs paper");

  struct PaperRow {
    int nodes;
    double time, gflops, bw, nonovl;
  };
  const PaperRow paper[] = {
      {1, 290, 0.35, 1.5, 0.13},  {4, 330, 1.24, 5.7, 0.19},  {9, 384, 2.40, 12.8, 0.30},
      {16, 509, 3.22, 18.7, 0.36}, {25, 791, 3.23, 17.9, 0.32}, {36, 1172, 3.15, 18.3, 0.36},
  };

  bench::Table table({"#nodes", "dim", "nnz", "size", "time paper", "time", "GF/s paper", "GF/s",
                      "BW paper", "BW", "non-ovl paper", "non-ovl"});
  std::vector<sim::TestbedResult> results;
  for (const auto& row : paper) {
    sim::TestbedExperiment e;
    e.nodes = row.nodes;
    e.mode = solver::ReductionMode::Simple;
    const auto r = sim::run_testbed(e);
    results.push_back(r);
    table.add_row({std::to_string(row.nodes),
                   format_count(static_cast<double>(e.matrix_dimension())),
                   format_count(e.total_nnz()), bench::fmt("%.2f TB", e.matrix_terabytes()),
                   bench::fmt("%.0f s", row.time), bench::fmt("%.0f s", r.time_seconds()),
                   bench::fmt("%.2f", row.gflops), bench::fmt("%.2f", r.gflops()),
                   bench::fmt("%.1f GB/s", row.bw), bench::fmt("%.1f GB/s", r.read_bandwidth() / 1e9),
                   bench::fmt("%.0f%%", row.nonovl * 100),
                   bench::fmt("%.0f%%", r.non_overlapped() * 100)});
  }
  table.print();

  bench::section("Fig. 6(a) — runtime relative to optimal I/O time at 20 GB/s peak");
  bench::Table fig6({"#nodes", "optimal I/O", "runtime", "ratio"});
  for (const auto& r : results) {
    fig6.add_row({std::to_string(r.experiment.nodes), bench::fmt("%.0f s", r.optimal_io_seconds()),
                  bench::fmt("%.0f s", r.time_seconds()),
                  bench::fmt("%.2f", r.relative_to_optimal_io())});
  }
  fig6.print();
  std::printf("\nshape check: near-linear GFlop/s to 9 nodes, then the ~18.5 GB/s GPFS\n"
              "aggregate plateau; the 20%%-36%% non-overlapped fractions come from the\n"
              "post-SpMV synchronization and the unaggregated partial-vector traffic.\n");
  return 0;
}
