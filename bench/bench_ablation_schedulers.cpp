// Scheduler ablations:
//   * local policy (FIFO vs data-aware vs static back-and-forth) on the DES
//     testbed — wall time and disk traffic (the reuse the reordering buys);
//   * global policy (affinity vs round-robin) on the real backend — the
//     network traffic the paper's affinity heuristic avoids.
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sched/engine.hpp"
#include "simcluster/testbed.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

namespace {

void local_policy_ablation() {
  bench::section("local scheduling policy on the DES testbed (9 nodes, 4 iterations)");
  bench::Table table({"policy", "time", "disk traffic", "reuse vs full sweeps"});
  const double full_sweeps = 4.0 * 9.0 * 25.0 * 4e9;
  for (auto policy : {sched::LocalPolicy::Fifo, sched::LocalPolicy::DataAware,
                      sched::LocalPolicy::BackAndForth}) {
    sim::TestbedExperiment e;
    e.nodes = 9;
    e.mode = solver::ReductionMode::Interleaved;
    e.policy = policy;
    const auto r = sim::run_testbed(e);
    table.add_row({sched::to_string(policy), bench::fmt("%.0f s", r.time_seconds()),
                   format_bytes(static_cast<double>(r.metrics.disk_bytes)),
                   bench::fmt("%.1f%% saved",
                              (1.0 - static_cast<double>(r.metrics.disk_bytes) / full_sweeps) * 100)});
  }
  table.print();
  std::printf("(data-aware keeps the last-used blocks alive across the iteration barrier;\n the saving is modest at testbed scale — 25 blocks/iteration vs ~5 blocks of\n memory — but it is free; Fig. 5 shows the same effect at 3-node scale)\n");
}

void global_policy_ablation() {
  bench::section("global assignment policy on the real backend (3 nodes)");
  bench::Table table({"policy", "cross-node traffic", "tasks off their data"});
  for (auto policy : {sched::GlobalPolicy::Affinity, sched::GlobalPolicy::RoundRobin}) {
    const std::string dir = (std::filesystem::temp_directory_path() /
                             ("dooc_abl_glob_" + std::to_string(::getpid()) + "_" +
                              std::to_string(static_cast<int>(policy))))
                                .string();
    storage::StorageConfig cfg;
    cfg.scratch_root = dir;
    df::TransportStats transport(3);
    storage::StorageCluster cluster(3, cfg, &transport);

    auto m = spmv::generate_uniform_gap(4 * 1024, 4 * 1024, 3.0, 0x61);
    const auto owner = spmv::column_strip_owner(3);
    const auto deployed = spmv::deploy_matrix(cluster, m, 4, owner);
    spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                    [](std::uint64_t) { return 1.0; });

    solver::IteratedSpmvConfig config;
    config.iterations = 2;
    solver::IteratedSpmv driver(cluster, deployed, config);
    // Clear the preferred-node pins so the global scheduler actually decides.
    for (sched::TaskId t = 0; t < driver.graph().size(); ++t) {
      auto& task = driver.graph().task(t);
      if (task.kind == "multiply") task.preferred_node = -1;
    }
    sched::EngineConfig ecfg;
    ecfg.global_policy = policy;
    sched::Engine engine(cluster, ecfg);
    const auto report = engine.run(driver.graph());

    // Count multiply tasks that ran away from their sub-matrix.
    int displaced = 0;
    for (sched::TaskId t = 0; t < driver.graph().size(); ++t) {
      const auto& task = driver.graph().task(t);
      if (task.kind != "multiply") continue;
      const auto meta = cluster.node(0).array_meta(task.inputs[0].array);
      if (meta && meta->home_node != report.assignment[t]) ++displaced;
    }
    table.add_row({sched::to_string(policy),
                   format_bytes(static_cast<double>(report.cross_node_bytes)),
                   std::to_string(displaced)});
    std::filesystem::remove_all(dir);
  }
  table.print();
  std::printf("(the paper's heuristic: \"tasks are sent to the compute nodes which host\n"
              " most of the data required to process them\")\n");
}

}  // namespace

int main() {
  local_policy_ablation();
  global_policy_ablation();
  return 0;
}
