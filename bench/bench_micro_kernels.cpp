// Micro-kernel bench: a format × partitioner sweep of the SpMV kernel
// layer (CSR vs SELL-C-σ, equal-row vs nnz-balanced splits) followed by
// the google-benchmark suite over the hot primitives.
//
// The sweep reports two timings per kernel:
//  * wall     — one threaded multiply, as the engine runs it;
//  * critical — each partition range timed serially, taking the maximum.
// The critical path is what a perfectly scheduled pool would pay, so it
// exposes load imbalance deterministically even on machines without
// enough cores to show it in wall time. Results are persisted to
// BENCH_kernels.json; the process exits non-zero if the balanced split
// or SELL format loses against the acceptance thresholds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "simcluster/flow_network.hpp"
#include "spmv/generator.hpp"
#include "spmv/kernels.hpp"
#include "spmv/partition.hpp"
#include "spmv/sell.hpp"
#include "storage/storage_cluster.hpp"

namespace {

using namespace dooc;

// ---------------------------------------------------------------------------
// Format × partitioner sweep
// ---------------------------------------------------------------------------

/// Rows reordered by descending population — the degree-sorted layout of
/// real graph/CI matrices, where an equal-row split hands the first worker
/// nearly all of the work.
spmv::CsrMatrix sort_rows_by_length_desc(const spmv::CsrMatrix& m) {
  std::vector<std::uint64_t> order(m.rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    return m.row_ptr[a + 1] - m.row_ptr[a] > m.row_ptr[b + 1] - m.row_ptr[b];
  });
  spmv::CsrMatrix out;
  out.rows = m.rows;
  out.cols = m.cols;
  out.row_ptr.reserve(m.rows + 1);
  out.row_ptr.push_back(0);
  out.col_idx.reserve(m.nnz());
  out.values.reserve(m.nnz());
  for (std::uint64_t r : order) {
    for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      out.col_idx.push_back(m.col_idx[k]);
      out.values.push_back(m.values[k]);
    }
    out.row_ptr.push_back(out.col_idx.size());
  }
  return out;
}

struct SweepShape {
  std::string name;
  spmv::CsrMatrix matrix;
};

struct SweepResult {
  std::string shape;
  std::string kernel;
  double wall_s = 0.0;
  double critical_s = 0.0;
  double imbalance = 1.0;
};

constexpr int kReps = 5;          ///< best-of-N to shed scheduler noise
constexpr std::size_t kParts = 4; ///< partition count for the split kernels

template <typename Fn>
double best_of(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) best = std::min(best, bench::time_seconds(fn));
  return best;
}

/// Max over ranges of the serial time of that range — the pool's critical
/// path under perfect scheduling.
template <typename RangeFn>
double critical_path(const std::vector<spmv::RowRange>& ranges, RangeFn&& run_range) {
  double cp = 0.0;
  for (const auto& r : ranges) {
    if (r.size() == 0) continue;
    cp = std::max(cp, best_of([&] { run_range(r); }));
  }
  return cp;
}

std::vector<SweepResult> run_shape(const SweepShape& shape, ThreadPool& pool) {
  const spmv::CsrMatrix& m = shape.matrix;
  std::vector<std::byte> csr_bytes;
  spmv::serialize_csr(m, csr_bytes);
  const auto view = spmv::CsrView::from_bytes(csr_bytes);

  const spmv::SellMatrix sell = spmv::build_sell(m, 8, 256);
  std::vector<std::byte> sell_bytes;
  spmv::serialize_sell(sell, sell_bytes);
  const auto sell_view = spmv::SellView::from_bytes(sell_bytes);

  std::vector<double> x(m.cols), y(m.rows);
  SplitMix64 rng(0x5EED);
  for (auto& v : x) v = rng.next_double() - 0.5;

  const auto equal = spmv::equal_row_ranges(m.rows, kParts);
  const auto balanced = spmv::balanced_row_ranges(m.row_ptr, kParts);
  const auto sell_chunks = spmv::balanced_row_ranges(sell_view.chunk_ptr(), kParts);

  spmv::KernelConfig eq_cfg, bal_cfg;
  eq_cfg.balance = spmv::BalanceMode::EqualRows;
  eq_cfg.serial_nnz_threshold = 0;
  bal_cfg.balance = spmv::BalanceMode::BalancedNnz;
  bal_cfg.serial_nnz_threshold = 0;

  std::vector<SweepResult> out;
  auto add = [&](std::string kernel, double wall, double critical, double imbalance) {
    out.push_back({shape.name, std::move(kernel), wall, critical, imbalance});
  };

  add("csr-serial", best_of([&] { view.multiply(x, y); }),
      best_of([&] { view.multiply(x, y); }), 1.0);
  add("csr-equal",
      best_of([&] { spmv::multiply_parallel(view, x, y, pool, eq_cfg); }),
      critical_path(equal, [&](const spmv::RowRange& r) { view.multiply_rows(x, y, r.begin, r.end); }),
      spmv::partition_imbalance(m.row_ptr, equal));
  add("csr-balanced",
      best_of([&] { spmv::multiply_parallel(view, x, y, pool, bal_cfg); }),
      critical_path(balanced,
                    [&](const spmv::RowRange& r) { view.multiply_rows(x, y, r.begin, r.end); }),
      spmv::partition_imbalance(m.row_ptr, balanced));
  add("sell-serial", best_of([&] { sell_view.multiply(x, y); }),
      best_of([&] { sell_view.multiply(x, y); }), 1.0);
  add("sell-balanced",
      best_of([&] { spmv::multiply_parallel(sell_view, x, y, pool, bal_cfg); }),
      critical_path(sell_chunks,
                    [&](const spmv::RowRange& r) {
                      sell_view.multiply_chunks(x, y, r.begin, r.end);
                    }),
      spmv::partition_imbalance(sell_view.chunk_ptr(), sell_chunks));
  return out;
}

double find_critical(const std::vector<SweepResult>& rs, const std::string& shape,
                     const std::string& kernel) {
  for (const auto& r : rs) {
    if (r.shape == shape && r.kernel == kernel) return r.critical_s;
  }
  std::fprintf(stderr, "sweep result missing: %s/%s\n", shape.c_str(), kernel.c_str());
  std::exit(2);
}

int run_kernel_sweep() {
  bench::section("SpMV kernel sweep: format x partitioner");

  std::vector<SweepShape> shapes;
  const std::uint64_t n = 16384;
  const double d = spmv::choose_gap_parameter(n, n, n * 64);
  shapes.push_back({"uniform", spmv::generate_uniform_gap(n, n, d, 0xA11CE)});
  shapes.push_back(
      {"skewed", sort_rows_by_length_desc(spmv::generate_power_law(n, n, 64.0, 1.5, 0xCAFE))});

  ThreadPool pool(kParts);
  bench::Table table({"shape", "kernel", "nnz", "wall ms", "critical ms", "GFLOP/s(crit)",
                      "imbalance"});
  bench::JsonReport report;
  report.meta("bench", "kernels");
  report.meta("parts", static_cast<std::uint64_t>(kParts));
  report.meta("reps", static_cast<std::uint64_t>(kReps));

  std::vector<SweepResult> all;
  for (const auto& shape : shapes) {
    const double flops = 2.0 * static_cast<double>(shape.matrix.nnz());
    for (const auto& r : run_shape(shape, pool)) {
      table.add_row({r.shape, r.kernel, std::to_string(shape.matrix.nnz()),
                     bench::fmt("%.3f", r.wall_s * 1e3), bench::fmt("%.3f", r.critical_s * 1e3),
                     bench::fmt("%.2f", flops / r.critical_s * 1e-9),
                     bench::fmt("%.2f", r.imbalance)});
      report.add_record()
          .field("shape", r.shape)
          .field("kernel", r.kernel)
          .field("rows", shape.matrix.rows)
          .field("nnz", shape.matrix.nnz())
          .field("wall_s", r.wall_s)
          .field("critical_s", r.critical_s)
          .field("gflops_critical", flops / r.critical_s * 1e-9)
          .field("imbalance", r.imbalance);
      all.push_back(r);
    }
  }
  table.print();

  const std::string artifact = "BENCH_kernels.json";
  if (!report.write(artifact)) {
    std::fprintf(stderr, "cannot write %s\n", artifact.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", artifact.c_str());

  // Acceptance: the balanced split must never lose to the serial kernel on
  // the critical path, and must win clearly where the equal split starves.
  int failures = 0;
  auto expect = [&](bool ok, const char* what, double lhs, double rhs) {
    std::printf("%-58s %8.3f vs %8.3f ms  [%s]\n", what, lhs * 1e3, rhs * 1e3,
                ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };
  const double cs_u = find_critical(all, "uniform", "csr-serial");
  const double cb_u = find_critical(all, "uniform", "csr-balanced");
  const double ce_s = find_critical(all, "skewed", "csr-equal");
  const double cb_s = find_critical(all, "skewed", "csr-balanced");
  const double ss_u = find_critical(all, "uniform", "sell-serial");
  const double sb_s = find_critical(all, "skewed", "sell-balanced");
  expect(cb_u <= cs_u, "uniform: balanced critical path <= serial", cb_u, cs_u);
  expect(cb_s * 1.15 <= ce_s, "skewed: balanced beats equal split by >= 1.15x", cb_s, ce_s);
  expect(ss_u <= cs_u * 1.25, "uniform: SELL serial within 1.25x of CSR serial", ss_u, cs_u);
  expect(sb_s * 1.15 <= ce_s, "skewed: SELL balanced beats CSR equal by >= 1.15x", sb_s, ce_s);
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark suite
// ---------------------------------------------------------------------------

const spmv::CsrMatrix& test_matrix() {
  static const spmv::CsrMatrix m = spmv::generate_uniform_gap(8192, 8192, 4.0, 0xbe9c);
  return m;
}

const std::vector<std::byte>& test_matrix_bytes() {
  static const std::vector<std::byte> bytes = [] {
    std::vector<std::byte> b;
    spmv::serialize_csr(test_matrix(), b);
    return b;
  }();
  return bytes;
}

const std::vector<std::byte>& test_matrix_sell_bytes() {
  static const std::vector<std::byte> bytes = [] {
    std::vector<std::byte> b;
    spmv::serialize_sell(spmv::build_sell(test_matrix(), 8, 256), b);
    return b;
  }();
  return bytes;
}

void BM_SpmvSerial(benchmark::State& state) {
  const auto view = spmv::CsrView::from_bytes(test_matrix_bytes());
  std::vector<double> x(view.cols(), 1.0), y(view.rows());
  for (auto _ : state) {
    view.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.nnz()));
}
BENCHMARK(BM_SpmvSerial);

void BM_SpmvSplit(benchmark::State& state) {
  const auto view = spmv::CsrView::from_bytes(test_matrix_bytes());
  std::vector<double> x(view.cols(), 1.0), y(view.rows());
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  spmv::KernelConfig cfg;
  cfg.balance = state.range(1) ? spmv::BalanceMode::BalancedNnz : spmv::BalanceMode::EqualRows;
  for (auto _ : state) {
    spmv::multiply_parallel(view, x, y, pool, cfg);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.nnz()));
}
BENCHMARK(BM_SpmvSplit)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->ArgNames({"threads", "balanced"});

void BM_SpmvSell(benchmark::State& state) {
  const auto view = spmv::SellView::from_bytes(test_matrix_sell_bytes());
  std::vector<double> x(view.cols(), 1.0), y(view.rows());
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    spmv::multiply_parallel(view, x, y, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.nnz()));
}
BENCHMARK(BM_SpmvSell)->Arg(1)->Arg(4)->ArgName("threads");

void BM_Blas1Dot(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  std::vector<double> a(n, 1.25), b(n, 0.75);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const double d = state.range(0) > 1 ? spmv::dot(a, b, pool) : spmv::dot(a, b);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * sizeof(double)));
}
BENCHMARK(BM_Blas1Dot)->Arg(1)->Arg(4)->ArgName("threads");

void BM_SumVectors(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const auto parts_count = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> storage_parts(parts_count, std::vector<double>(n, 1.0));
  std::vector<std::span<const double>> parts(storage_parts.begin(), storage_parts.end());
  std::vector<double> out(n);
  for (auto _ : state) {
    spmv::sum_vectors(parts, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8 * (parts_count + 1)));
}
BENCHMARK(BM_SumVectors)->Arg(3)->Arg(5)->Arg(25);

void BM_CsrParse(benchmark::State& state) {
  const auto& bytes = test_matrix_bytes();
  for (auto _ : state) {
    auto view = spmv::CsrView::from_bytes(bytes);
    benchmark::DoNotOptimize(view.nnz());
  }
}
BENCHMARK(BM_CsrParse);

void BM_CsrSerialize(benchmark::State& state) {
  const auto& m = test_matrix();
  for (auto _ : state) {
    std::vector<std::byte> out;
    spmv::serialize_csr(m, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.serialized_bytes()));
}
BENCHMARK(BM_CsrSerialize);

void BM_SellBuild(benchmark::State& state) {
  const auto& m = test_matrix();
  for (auto _ : state) {
    auto sell = spmv::build_sell(m, 8, static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(sell.padded_nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_SellBuild)->Arg(1)->Arg(256)->ArgName("sigma");

void BM_StorageWriteSealRead(benchmark::State& state) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("dooc_bm_" + std::to_string(::getpid())))
                              .string();
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  cfg.memory_budget = 1ull << 30;
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t counter = 0;
  for (auto _ : state) {
    const std::string name = "bm" + std::to_string(counter++);
    node.create_array(name, bytes, bytes);
    {
      auto w = node.request_write({name, 0, bytes}).get();
      w.bytes()[0] = std::byte{1};
    }
    {
      auto r = node.request_read({name, 0, bytes}).get();
      benchmark::DoNotOptimize(r.bytes().data());
    }
    node.delete_array(name);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StorageWriteSealRead)->Arg(4096)->Arg(1 << 20);

void BM_FlowNetworkRecompute(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  sim::FlowNetwork net;
  const auto agg = net.add_resource("agg", 1e9);
  std::vector<sim::ResourceId> links;
  for (int i = 0; i < 36; ++i) links.push_back(net.add_resource("l" + std::to_string(i), 1e8));
  SplitMix64 rng(3);
  for (int i = 0; i < flows; ++i) {
    net.start_flow(1ull << 40, {links[rng.next_below(36)], agg}, 9e7);
  }
  for (auto _ : state) {
    net.recompute_rates();
    benchmark::DoNotOptimize(net.active_flows());
  }
}
BENCHMARK(BM_FlowNetworkRecompute)->Arg(8)->Arg(72);

}  // namespace

int main(int argc, char** argv) {
  const int sweep_status = run_kernel_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return sweep_status;
}
