// Google-benchmark microbenchmarks of the hot primitives: the CSR SpMV
// kernel (serial and split), the reduction, binary-CSR (de)serialization,
// storage read/write round-trips, and the DES flow-network rate solver.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.hpp"
#include "simcluster/flow_network.hpp"
#include "spmv/generator.hpp"
#include "spmv/kernels.hpp"
#include "storage/storage_cluster.hpp"

namespace {

using namespace dooc;

const spmv::CsrMatrix& test_matrix() {
  static const spmv::CsrMatrix m = spmv::generate_uniform_gap(8192, 8192, 4.0, 0xbe9c);
  return m;
}

const std::vector<std::byte>& test_matrix_bytes() {
  static const std::vector<std::byte> bytes = [] {
    std::vector<std::byte> b;
    spmv::serialize_csr(test_matrix(), b);
    return b;
  }();
  return bytes;
}

void BM_SpmvSerial(benchmark::State& state) {
  const auto view = spmv::CsrView::from_bytes(test_matrix_bytes());
  std::vector<double> x(view.cols(), 1.0), y(view.rows());
  for (auto _ : state) {
    view.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.nnz()));
}
BENCHMARK(BM_SpmvSerial);

void BM_SpmvSplit(benchmark::State& state) {
  const auto view = spmv::CsrView::from_bytes(test_matrix_bytes());
  std::vector<double> x(view.cols(), 1.0), y(view.rows());
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    spmv::multiply_parallel(view, x, y, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(view.nnz()));
}
BENCHMARK(BM_SpmvSplit)->Arg(1)->Arg(2)->Arg(4);

void BM_SumVectors(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const auto parts_count = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> storage_parts(parts_count, std::vector<double>(n, 1.0));
  std::vector<std::span<const double>> parts(storage_parts.begin(), storage_parts.end());
  std::vector<double> out(n);
  for (auto _ : state) {
    spmv::sum_vectors(parts, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8 * (parts_count + 1)));
}
BENCHMARK(BM_SumVectors)->Arg(3)->Arg(5)->Arg(25);

void BM_CsrParse(benchmark::State& state) {
  const auto& bytes = test_matrix_bytes();
  for (auto _ : state) {
    auto view = spmv::CsrView::from_bytes(bytes);
    benchmark::DoNotOptimize(view.nnz());
  }
}
BENCHMARK(BM_CsrParse);

void BM_CsrSerialize(benchmark::State& state) {
  const auto& m = test_matrix();
  for (auto _ : state) {
    std::vector<std::byte> out;
    spmv::serialize_csr(m, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.serialized_bytes()));
}
BENCHMARK(BM_CsrSerialize);

void BM_StorageWriteSealRead(benchmark::State& state) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("dooc_bm_" + std::to_string(::getpid())))
                              .string();
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  cfg.memory_budget = 1ull << 30;
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t counter = 0;
  for (auto _ : state) {
    const std::string name = "bm" + std::to_string(counter++);
    node.create_array(name, bytes, bytes);
    {
      auto w = node.request_write({name, 0, bytes}).get();
      w.bytes()[0] = std::byte{1};
    }
    {
      auto r = node.request_read({name, 0, bytes}).get();
      benchmark::DoNotOptimize(r.bytes().data());
    }
    node.delete_array(name);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StorageWriteSealRead)->Arg(4096)->Arg(1 << 20);

void BM_FlowNetworkRecompute(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  sim::FlowNetwork net;
  const auto agg = net.add_resource("agg", 1e9);
  std::vector<sim::ResourceId> links;
  for (int i = 0; i < 36; ++i) links.push_back(net.add_resource("l" + std::to_string(i), 1e8));
  SplitMix64 rng(3);
  for (int i = 0; i < flows; ++i) {
    net.start_flow(1ull << 40, {links[rng.next_below(36)], agg}, 9e7);
  }
  for (auto _ : state) {
    net.recompute_rates();
    benchmark::DoNotOptimize(net.active_flows());
  }
}
BENCHMARK(BM_FlowNetworkRecompute)->Arg(8)->Arg(72);

}  // namespace

BENCHMARK_MAIN();
