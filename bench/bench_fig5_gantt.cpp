// Figure 5 reproduction: Gantt charts of the two execution plans on a
// 3-node scenario where each node can keep only ONE sub-matrix in memory.
//
//  (a) "Regular" plan  — FIFO order: every iteration loads 3 sub-matrices
//      per node (6 loads per node for 2 iterations).
//  (b) "Back and forth" — the data-aware local scheduler reorders the
//      second iteration to start with the sub-matrix still in memory,
//      saving one load per node per subsequent iteration (3+2 loads).
//
// This is a REAL run of the middleware (storage + hierarchical scheduler)
// on generated binary-CSR files, not a simulation. The lanes and the load
// counts are derived from the obs trace stream: the engine emits one
// Complete event per task (cat "task", pid = node, args task id /
// missing_bytes), collected by TraceSession and replayed here in
// timestamp order — the same events a DOOC_TRACE=out.json run would ship
// to Perfetto.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "bench_util.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/engine.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

namespace {

struct RunOutcome {
  std::vector<std::string> lanes;  // one line per node
  std::vector<std::uint64_t> loads_per_iteration;
  std::string metrics_text;  // obs metrics snapshot for this run
  std::string causal_text;   // critical path + blame + what-if(io:0) report
  std::size_t causal_path_segments = 0;
  double causal_blame_us = 0.0;     // sum over blame categories
  double causal_makespan_us = 0.0;  // graph extent (trace time)
};

/// Fetch a named argument off a trace event (engine task spans carry
/// "task" = TaskId and "missing_bytes").
std::optional<std::uint64_t> event_arg(const obs::Event& ev, std::uint32_t name_id) {
  for (std::uint8_t i = 0; i < ev.nargs; ++i) {
    if (ev.arg_name[i] == name_id) return ev.arg_val[i];
  }
  return std::nullopt;
}

RunOutcome run_plan(sched::LocalPolicy policy, const std::string& tag, bool barrier,
                    const std::string& trace_path = {}) {
  const std::string scratch = std::filesystem::temp_directory_path() /
                              ("dooc_fig5_" + tag + "_" + std::to_string(::getpid()));
  storage::StorageConfig cfg;
  cfg.scratch_root = scratch;
  // Fig. 5's premise: "a node can keep only one sub-matrix at a time on its
  // main memory". Sub-matrices below are ~11 MB, so 16 MB fits exactly one.
  cfg.memory_budget = 16ull << 20;
  storage::StorageCluster cluster(3, cfg);

  // 3x3 grid; node u stores (and computes) row u, as in the paper's Gantt.
  const std::uint64_t n = 3 * 2048;
  auto m = spmv::generate_uniform_gap(n, n, 4.0, 0xf15);
  const auto owner = spmv::row_strip_owner(3);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);

  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 1e-6 * static_cast<double>(i); });

  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = barrier;
  solver::IteratedSpmv driver(cluster, deployed, config);

  sched::EngineConfig ecfg;
  ecfg.local_policy = policy;
  ecfg.prefetch_window = 0;  // Fig. 5's scenario has no room to read ahead

  // Collect-only trace session around the run (empty path = no file); the
  // Gantt below is reconstructed purely from the event stream.
  obs::Metrics::instance().reset();
  obs::TraceSession::instance().start(trace_path);
  sched::Engine engine(cluster, ecfg);
  (void)driver.run(engine);
  std::vector<obs::Event> events = obs::TraceSession::instance().stop();

  RunOutcome out;
  out.metrics_text = obs::Metrics::instance().snapshot().to_text();

  // Causal analysis over the same stream, through the exact exporter →
  // reader path a DOOC_TRACE file takes (what dooc_tracecat sees).
  {
    const std::vector<obs::ParsedEvent> parsed =
        obs::parse_chrome_trace(obs::chrome_trace_json(events));
    const obs::causal::CausalGraph graph = obs::causal::CausalGraph::build(parsed);
    out.causal_text = obs::causal::causal_report(graph, true, true, {{"io", 0.0}});
    out.causal_path_segments = graph.critical_path().size();
    out.causal_blame_us = graph.blame().total_us();
    out.causal_makespan_us = graph.makespan_us();
  }
  out.loads_per_iteration.assign(3, 0);
  out.lanes.assign(3, "");

  const std::uint32_t cat_task = obs::intern("task");
  const std::uint32_t arg_task = obs::intern("task");
  const std::uint32_t arg_missing = obs::intern("missing_bytes");
  // stop() returns events sorted by ts; replay the task spans in order.
  for (const auto& ev : events) {
    if (ev.phase != obs::Phase::Complete || ev.cat != cat_task) continue;
    if (ev.pid < 0 || ev.pid >= 3) continue;
    const auto task_id = event_arg(ev, arg_task);
    if (!task_id) continue;
    const auto& task = driver.graph().task(static_cast<sched::TaskId>(*task_id));
    if (task.kind == "sync") continue;
    std::string cell = obs::interned(ev.name);
    const std::uint64_t missing = event_arg(ev, arg_missing).value_or(0);
    if (task.kind == "multiply" && missing >= (1 << 20)) {
      // Only count real sub-matrix loads; a missing 16 KB vector part is
      // network traffic, not a bold L(A) of Fig. 5.
      // The matrix block had to be loaded first — the bold L(A_u_v) of Fig 5.
      cell = "L(" + task.inputs[0].array + ")+" + cell;
      const auto group = static_cast<std::size_t>(task.group);
      if (group >= 1 && group <= out.loads_per_iteration.size()) {
        ++out.loads_per_iteration[group - 1];
      }
    }
    auto& lane = out.lanes[static_cast<std::size_t>(ev.pid)];
    lane += (lane.empty() ? "" : " | ") + cell;
  }
  std::filesystem::remove_all(scratch);
  return out;
}

void print_outcome(const char* title, const RunOutcome& out) {
  bench::section(title);
  for (std::size_t node = 0; node < out.lanes.size(); ++node) {
    std::printf("P%zu | %s\n", node + 1, out.lanes[node].c_str());
  }
  std::printf("\nmatrix-block loads: iteration 1 = %llu, iteration 2 = %llu (cluster total)\n",
              static_cast<unsigned long long>(out.loads_per_iteration[0]),
              static_cast<unsigned long long>(out.loads_per_iteration[1]));
}

}  // namespace

int main() {
  // With the inter-iteration barrier every second-iteration task becomes
  // ready at once, so the local reordering is purely the policy's doing —
  // the cleanest reproduction of the 3-loads vs 2-loads claim.
  const auto regular = run_plan(sched::LocalPolicy::Fifo, "regular", true);
  print_outcome("Fig. 5(a) — regular plan (FIFO local order)", regular);

  const auto baf = run_plan(sched::LocalPolicy::DataAware, "baf", true);
  print_outcome("Fig. 5(b) — back-and-forth plan (data-aware local order)", baf);

  // Fig. 5(b) proper has no barrier at all: second-iteration multiplies
  // interleave with first-iteration reductions (lanes show x^2 work between
  // x^1 work); load counts get timing-dependent but stay below FIFO's.
  // DOOC_TRACE saves this run's trace for offline dooc_tracecat analysis.
  const char* trace_env = std::getenv("DOOC_TRACE");
  const auto async = run_plan(sched::LocalPolicy::DataAware, "async", false,
                              trace_env != nullptr ? trace_env : "");
  print_outcome("fully asynchronous variant (no barrier, as drawn in Fig. 5(b))", async);

  bench::section("obs metrics — data-aware barrier run");
  std::printf("%s", baf.metrics_text.c_str());

  // The causal view of the asynchronous run — the trace-derived counterpart
  // of the Gantt above: where its critical path actually went, and what a
  // free storage layer would buy (the paper's overlap claim, quantified).
  bench::section("causal analysis — asynchronous run (dooc_tracecat --critical-path --blame)");
  std::printf("%s", async.causal_text.c_str());

  // Soft sanity: every run's trace must yield a non-empty critical path
  // whose blame total matches the traced makespan (the path tiles the
  // interval). Reported, not gated — the 9->9/9->6 load shape below stays
  // the bench's exit criterion.
  bool causal_ok = true;
  for (const RunOutcome* run : {&regular, &baf, &async}) {
    const bool nonempty = run->causal_path_segments > 0;
    const bool tiles = run->causal_blame_us <= run->causal_makespan_us * 1.001 &&
                       run->causal_blame_us >= run->causal_makespan_us * 0.75;
    causal_ok = causal_ok && nonempty && tiles;
  }
  std::printf("\ncausal check: paths non-empty, blame totals track traced makespans: %s\n",
              causal_ok ? "YES" : "NO");

  std::printf(
      "\npaper: the regular plan performs 3 matrix loads per node per iteration;\n"
      "the reordered plan performs 3 for the first and 2 for each subsequent\n"
      "iteration — \"automatically discovered and executed by the DOoC middleware\n"
      "without requiring any effort or input from the application programmer.\"\n");

  // The barrier variants are deterministic, so the exact Fig. 5 contrast is
  // asserted, not just the inequality: FIFO loads 3 sub-matrices per node in
  // BOTH iterations (9 → 9); the data-aware plan starts iteration 2 from the
  // sub-matrix still in memory on each node (9 → 6).
  const bool regular_shape =
      regular.loads_per_iteration[0] == 9 && regular.loads_per_iteration[1] == 9;
  const bool baf_shape = baf.loads_per_iteration[0] == 9 && baf.loads_per_iteration[1] == 6;
  const bool shape_holds = regular_shape && baf_shape;
  std::printf("\nreproduced: regular 9 -> 9 loads: %s; data-aware 9 -> 6 loads: %s\n",
              regular_shape ? "YES" : "NO", baf_shape ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}
