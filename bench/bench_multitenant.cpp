// Multi-tenant job runtime under load — the engine-refactor acceptance
// bench:
//   1 parity    — the same SpMV workload through Engine::run and through
//                 the JobManager: results bitwise-identical; and in the
//                 DES, a single job on the multiplexed run_jobs path has
//                 an equal-or-better makespan than run() (asserted);
//   2 fairness  — equal-weight tenants saturating the inflight-load
//                 budget: Jain index of job latencies >= 0.9 (asserted);
//   3 isolation — small jobs beside one large job: the small jobs' worst
//                 latency stays a bounded multiple of their latency when
//                 run alone (asserted) — fair-share admission, not FIFO;
//   4 poisson   — Poisson arrivals, mixed job sizes, skewed priorities
//                 and weights: p50/p99 job latency and makespan;
//   5 coverage  — a concurrent 2-job run on the real engine: every task
//                 span and every causal flow event carries the job arg
//                 (asserted), so traces filter cleanly per job.
//
// Phases 1(DES)–4 run under virtual time and are deterministic on any
// machine: BENCH_multitenant.json diffs tightly against
// bench/baselines/BENCH_multitenant.json (bench_multitenant_check).
// Real-engine wall times are reported but excluded from the gate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "jobs/job_manager.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/engine.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/array_creator.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"
#include "storage/storage_cluster.hpp"

using namespace dooc;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what);
    ++failures;
  }
}

std::string scratch_dir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dooc_mt_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

// ---------------------------------------------------------------------------
// DES workload synthesis: jobs of independent reads over shared durable
// sub-matrices, each task writing one private (job-namespaced) partial.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kArrayBytes = 32ull << 20;
constexpr int kSimNodes = 2;
constexpr int kDurable = 8;

void add_durables(solver::VirtualArrayCreator& creator) {
  for (int i = 0; i < kDurable; ++i) {
    creator.add_durable("m" + std::to_string(i), kArrayBytes, i % kSimNodes);
  }
}

sched::TaskGraph make_job(int jid, int tasks, solver::VirtualArrayCreator& creator) {
  sched::TaskGraph g;
  for (int i = 0; i < tasks; ++i) {
    const std::string out = jobs::namespaced(static_cast<jobs::JobId>(jid),
                                             "o" + std::to_string(i));
    creator.create(out, kArrayBytes, i % kSimNodes);
    sched::Task t;
    t.name = "j" + std::to_string(jid) + ".t" + std::to_string(i);
    t.kind = "multiply";
    t.inputs = {{"m" + std::to_string(i % kDurable), 0, kArrayBytes}};
    t.outputs = {{out, 0, kArrayBytes}};
    t.est_flops = 2e8;
    t.seq = i;
    g.add(std::move(t));
  }
  g.build();
  return g;
}

sim::SimResources contended_resources() {
  sim::SimResources res;
  res.inflight_load_budget = kArrayBytes;  // one fetch per node at a time
  return res;
}

// ---------------------------------------------------------------------------
// Phase 1a: real-engine parity, Engine::run vs JobManager
// ---------------------------------------------------------------------------

struct RealRun {
  std::vector<double> result;
  std::uint64_t tasks = 0;
  double wall_s = 0.0;
};

RealRun run_real_spmv(bool via_manager) {
  const std::string dir = scratch_dir(via_manager ? "jm" : "run");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  storage::StorageCluster cluster(2, cfg);
  auto m = spmv::generate_uniform_gap(256, 256, 3.0, 0x5eed);
  const auto owner = spmv::row_strip_owner(2);
  const auto deployed = spmv::deploy_matrix(cluster, m, 2, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 1e-3 * static_cast<double>(i); });
  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  solver::IteratedSpmv driver(cluster, deployed, config);

  sched::Engine engine(cluster, {});
  RealRun out;
  const std::uint64_t t0 = bench::now_ns();
  if (via_manager) {
    jobs::JobManager jm(cluster, engine);
    out.tasks = jm.await(jm.submit(driver.graph())).tasks_executed;
  } else {
    out.tasks = driver.run(engine).tasks_executed;
  }
  out.wall_s = bench::seconds_since(t0);
  out.result = driver.gather_result();
  std::filesystem::remove_all(dir);
  return out;
}

// ---------------------------------------------------------------------------
// Phase 5: trace coverage of a concurrent 2-job run
// ---------------------------------------------------------------------------

struct Coverage {
  std::uint64_t task_spans = 0;
  double task_job_coverage = 0.0;
  double flow_job_coverage = 0.0;
};

Coverage run_trace_coverage() {
  const std::string dir = scratch_dir("trace");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  cfg.memory_budget = 16ull << 20;
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  // Durable inputs so the jobs issue real loads (read-issue flows).
  for (const char* name : {"ta", "tb"}) {
    const std::string path = node.scratch_dir() + "/" + name + ".bin";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::vector<char> blob(8 * 65536, 'z');
    std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    node.import_file(name, path, 65536);
  }
  const auto reader_graph = [&](sched::TaskGraph& g, const std::string& src,
                                const std::string& prefix) {
    for (int i = 0; i < 8; ++i) {
      const std::string out = prefix + std::to_string(i);
      node.create_array(out, 8, 8);
      sched::Task t;
      t.name = out;
      t.kind = "test";
      t.inputs = {{src, static_cast<std::uint64_t>(i) * 65536, 1024}};
      t.outputs = {{out, 0, 8}};
      t.seq = i;
      t.work = [](sched::TaskContext& ctx) {
        ctx.output(0).as<std::uint64_t>()[0] = static_cast<std::uint64_t>(ctx.input(0).bytes()[0]);
      };
      g.add(std::move(t));
    }
    g.build();
  };
  sched::TaskGraph ga, gb;
  reader_graph(ga, "ta", "cov_a");
  reader_graph(gb, "tb", "cov_b");

  obs::TraceSession::instance().start();
  sched::EngineConfig ecfg;
  ecfg.compute_slots_per_node = 2;
  {
    sched::Engine engine(cluster, ecfg);
    const auto id_a = engine.submit(ga);
    const auto id_b = engine.submit(gb);
    (void)engine.await(id_a);
    (void)engine.await(id_b);
  }
  const auto events = obs::TraceSession::instance().stop();
  const auto parsed = obs::parse_chrome_trace(obs::chrome_trace_json(events));

  Coverage cov;
  std::uint64_t task_with_job = 0;
  std::uint64_t flows = 0;
  std::uint64_t flows_with_job = 0;
  for (const auto& ev : parsed) {
    if (ev.phase == 'X' && ev.cat == "task") {
      ++cov.task_spans;
      if (ev.args.count("job") != 0) ++task_with_job;
    }
    if (ev.phase == 's' || ev.phase == 't' || ev.phase == 'f') {
      ++flows;
      if (ev.args.count("job") != 0) ++flows_with_job;
    }
  }
  cov.task_job_coverage =
      cov.task_spans > 0 ? static_cast<double>(task_with_job) / static_cast<double>(cov.task_spans)
                         : 0.0;
  cov.flow_job_coverage =
      flows > 0 ? static_cast<double>(flows_with_job) / static_cast<double>(flows) : 0.0;
  std::filesystem::remove_all(dir);
  return cov;
}

}  // namespace

int main() {
  bench::JsonReport report;
  report.meta("bench", "multitenant");
  report.meta("sim_nodes", static_cast<std::uint64_t>(kSimNodes));
  report.meta("array_mb", static_cast<double>(kArrayBytes >> 20));

  // -------------------------------------------------------------------------
  bench::section("Phase 1 — single-job parity: JobManager vs the pre-refactor path");

  const RealRun via_run = run_real_spmv(false);
  const RealRun via_jm = run_real_spmv(true);
  const bool bitwise =
      via_run.result.size() == via_jm.result.size() &&
      std::memcmp(via_run.result.data(), via_jm.result.data(),
                  via_run.result.size() * sizeof(double)) == 0;
  std::printf("  real engine: %llu tasks, run %.3f s / manager %.3f s, results %s\n",
              static_cast<unsigned long long>(via_run.tasks), via_run.wall_s, via_jm.wall_s,
              bitwise ? "bitwise-identical" : "DIFFER");
  check(bitwise, "JobManager result must be bitwise-identical to Engine::run");
  check(via_run.tasks == via_jm.tasks, "task counts must match across the two paths");

  double single_run_s = 0.0;
  double single_jobs_s = 0.0;
  {
    solver::VirtualArrayCreator creator;
    add_durables(creator);
    sched::TaskGraph g = make_job(1, 12, creator);
    {
      sim::SimEngine des(kSimNodes, contended_resources(), creator.arrays());
      single_run_s = des.run(g).makespan;
    }
    {
      sim::SimEngine des(kSimNodes, contended_resources(), creator.arrays());
      single_jobs_s = des.run_jobs({{&g, 0.0, 1.0, 0}}).makespan;
    }
  }
  std::printf("  DES single job: run() %.3f s, run_jobs() %.3f s\n", single_run_s, single_jobs_s);
  check(single_jobs_s <= single_run_s + 1e-9,
        "a lone job on the multiplexed path must have an equal-or-better makespan");
  report.add_record()
      .field("scenario", "parity")
      .field("tasks", via_run.tasks)
      .field("parity_ok", static_cast<std::uint64_t>(bitwise ? 1 : 0))
      .field("wall_run_s", via_run.wall_s)
      .field("wall_jm_s", via_jm.wall_s)
      .field("des_single_run_s", single_run_s)
      .field("des_single_jobs_s", single_jobs_s);

  // -------------------------------------------------------------------------
  bench::section("Phase 2 — fairness at saturation: 4 equal tenants, one-fetch budget");

  {
    solver::VirtualArrayCreator creator;
    add_durables(creator);
    std::deque<sched::TaskGraph> graphs;
    std::vector<sim::SimJob> submit;
    for (int j = 0; j < 4; ++j) {
      graphs.push_back(make_job(j, 8, creator));
      submit.push_back({&graphs.back(), 0.0, 1.0, 0});
    }
    sim::SimEngine des(kSimNodes, contended_resources(), creator.arrays());
    const sim::MultiJobMetrics m = des.run_jobs(submit);
    std::vector<double> lat;
    for (const auto& j : m.jobs) lat.push_back(j.latency);
    const double jain = sim::MultiJobMetrics::jain(lat);
    bench::Table table({"job", "latency"});
    for (const auto& j : m.jobs) {
      table.add_row({std::to_string(j.job), bench::fmt("%.3f s", j.latency)});
    }
    table.print();
    std::printf("  Jain %.4f, makespan %.3f s, deferred fetches %llu\n", jain, m.makespan,
                static_cast<unsigned long long>(m.deferred_fetches));
    check(jain >= 0.9, "equal-weight tenants at saturation must land Jain >= 0.9");
    check(m.deferred_fetches > 0, "a one-fetch budget must actually queue admissions");
    report.add_record()
        .field("scenario", "fairness_equal_4")
        .field("jain", jain)
        .field("makespan_s", m.makespan)
        .field("deferred_fetches", m.deferred_fetches)
        .field("p99_s", percentile(lat, 0.99));
  }

  // -------------------------------------------------------------------------
  bench::section("Phase 3 — isolation: 4 small jobs beside one large job");

  {
    // Baseline: one small job with the cluster to itself.
    double alone_s = 0.0;
    {
      solver::VirtualArrayCreator creator;
      add_durables(creator);
      sched::TaskGraph g = make_job(1, 4, creator);
      sim::SimEngine des(kSimNodes, contended_resources(), creator.arrays());
      alone_s = des.run_jobs({{&g, 0.0, 1.0, 0}}).jobs[0].latency;
    }
    solver::VirtualArrayCreator creator;
    add_durables(creator);
    std::deque<sched::TaskGraph> graphs;
    std::vector<sim::SimJob> submit;
    graphs.push_back(make_job(0, 32, creator));  // the elephant, submitted first
    submit.push_back({&graphs.back(), 0.0, 1.0, 0});
    for (int j = 1; j <= 4; ++j) {
      graphs.push_back(make_job(j, 4, creator));
      submit.push_back({&graphs.back(), 0.05 * j, 1.0, 0});
    }
    sim::SimEngine des(kSimNodes, contended_resources(), creator.arrays());
    const sim::MultiJobMetrics m = des.run_jobs(submit);
    std::vector<double> small;
    for (const auto& j : m.jobs) {
      std::printf("  job %u: arrival %.2f s, finish %.3f s, latency %.3f s\n", j.job, j.arrival,
                  j.finish, j.latency);
      if (j.job != 0) small.push_back(j.latency);
    }
    const double small_p99 = percentile(small, 0.99);
    const double blowup = alone_s > 0 ? small_p99 / alone_s : 0.0;
    std::printf("  small job alone %.3f s; beside the elephant p99 %.3f s (%.2fx)\n", alone_s,
                small_p99, blowup);
    std::printf("  elephant finished at %.3f s of %.3f s makespan\n", m.jobs[0].finish,
                m.makespan);
    check(blowup <= 10.0,
          "fair-share admission must bound small-job p99 beside a large job (<= 10x alone)");
    report.add_record()
        .field("scenario", "isolation_small_vs_large")
        .field("alone_s", alone_s)
        .field("small_p99_s", small_p99)
        .field("blowup", blowup)
        .field("makespan_s", m.makespan);
  }

  // -------------------------------------------------------------------------
  bench::section("Phase 4 — Poisson arrivals, mixed sizes, skewed priorities");

  {
    solver::VirtualArrayCreator creator;
    add_durables(creator);
    SplitMix64 rng(2026);
    std::deque<sched::TaskGraph> graphs;
    std::vector<sim::SimJob> submit;
    double arrival = 0.0;
    const double lambda = 1.2;  // jobs per virtual second
    for (int j = 0; j < 12; ++j) {
      arrival += -std::log(1.0 - rng.next_double()) / lambda;
      const std::uint64_t die = rng.next_below(10);
      const int tasks = die < 6 ? 3 : (die < 9 ? 8 : 16);       // 60/30/10 small/med/large
      const int priority = die < 7 ? 0 : (die < 9 ? 1 : 2);      // skewed tiers
      const double weight = 1.0 + static_cast<double>(rng.next_below(3));
      graphs.push_back(make_job(j, tasks, creator));
      submit.push_back({&graphs.back(), arrival, weight, priority});
    }
    sim::SimEngine des(kSimNodes, contended_resources(), creator.arrays());
    const sim::MultiJobMetrics m = des.run_jobs(submit);
    std::vector<double> lat;
    for (const auto& j : m.jobs) {
      check(j.latency > 0.0, "every Poisson-arrival job must complete");
      lat.push_back(j.latency);
    }
    const double p50 = percentile(lat, 0.50);
    const double p99 = percentile(lat, 0.99);
    std::printf("  12 jobs over %.2f s of arrivals: latency p50 %.3f s, p99 %.3f s\n", arrival,
                p50, p99);
    std::printf("  makespan %.3f s, deferred fetches %llu, starvation overrides %llu\n",
                m.makespan, static_cast<unsigned long long>(m.deferred_fetches),
                static_cast<unsigned long long>(m.starvation_overrides));
    report.add_record()
        .field("scenario", "poisson_mixed_12")
        .field("latency_p50_s", p50)
        .field("latency_p99_s", p99)
        .field("makespan_s", m.makespan)
        .field("deferred_fetches", m.deferred_fetches)
        .field("starvation_overrides", m.starvation_overrides);
  }

  // -------------------------------------------------------------------------
  bench::section("Phase 5 — trace coverage: every task span / flow carries the job id");

  {
    const Coverage cov = run_trace_coverage();
    std::printf("  %llu task spans, job-arg coverage: spans %.0f%%, flows %.0f%%\n",
                static_cast<unsigned long long>(cov.task_spans), 100.0 * cov.task_job_coverage,
                100.0 * cov.flow_job_coverage);
    check(cov.task_spans == 16, "both jobs' 16 tasks must emit task spans");
    check(cov.task_job_coverage == 1.0, "every task span must carry the job arg");
    check(cov.flow_job_coverage == 1.0, "every causal flow event must carry the job arg");
    report.add_record()
        .field("scenario", "trace_coverage")
        .field("task_spans", cov.task_spans)
        .field("task_job_coverage", cov.task_job_coverage)
        .field("flow_job_coverage", cov.flow_job_coverage);
  }

  const std::string artifact = "BENCH_multitenant.json";
  if (!report.write(artifact)) {
    std::fprintf(stderr, "cannot write %s\n", artifact.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", artifact.c_str());
  if (failures != 0) {
    std::printf("%d acceptance check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("acceptance checks passed: parity, fairness, isolation, liveness, coverage\n");
  return 0;
}
