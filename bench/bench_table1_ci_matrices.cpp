// Table I reproduction: matrix dimensions D and non-zero counts of the 10B
// Hamiltonian at the paper's (Nmax, Mj) truncations, plus the derived
// processor counts and local sizes.
//
// D is computed *exactly* by the M-scheme counting DP (ci/mscheme.hpp);
// nnz is estimated by the random-walk connectivity sampler (exact nnz for
// D ~ 1e8 bases would require the full enumeration the paper's authors ran
// on production hardware). n_p and the local sizes come from the
// calibrated MFDn memory model.
#include <cstdio>

#include "bench_util.hpp"
#include "ci/hamiltonian.hpp"
#include "ci/mscheme.hpp"
#include "common/stats.hpp"
#include "perfmodel/hopper_model.hpp"

using namespace dooc;

int main() {
  bench::section("Table I — 10B CI matrices: paper vs this reproduction");

  struct Case {
    int nmax;
    int mj;
    double paper_d;
    double paper_nnz;
    int paper_np;
    double paper_vlocal_mb;
    double paper_hlocal_mb;
  };
  const Case cases[] = {
      {7, 0, 4.66e7, 2.81e10, 276, 8.8, 880},
      {8, 1, 1.60e8, 1.24e11, 1128, 13.6, 880},
      {9, 2, 4.82e8, 4.62e11, 4560, 20.4, 800},
      {10, 3, 1.30e9, 1.51e12, 18336, 27.2, 750},
  };

  // MFDn stores (and Table I counts) the *half* of the symmetric matrix;
  // the sampler estimates full-matrix non-zeros, so both are shown.
  bench::Table table({"(Nmax,Mj)", "D paper", "D exact (DP)", "nnz paper", "nnz est.(half)",
                      "np paper", "np model", "v_local", "H_local"});
  for (const auto& c : cases) {
    const ci::NucleusConfig config{5, 5, c.nmax, 2 * c.mj};
    const auto d = ci::basis_dimension(config);
    // Connectivity sampling: enough samples for a stable order of magnitude.
    const auto conn = ci::estimate_connectivity(config, 60, 0x7ab1e1);
    const double half_nnz = static_cast<double>(conn.estimated_nnz) / 2.0;
    const int np = perfmodel::HopperModel::min_processors(half_nnz);
    const double vlocal = perfmodel::HopperModel::local_vector_bytes(
        static_cast<double>(d), c.paper_np);
    const double hlocal = perfmodel::HopperModel::local_matrix_bytes(c.paper_nnz, c.paper_np);
    table.add_row({"(" + std::to_string(c.nmax) + "," + std::to_string(c.mj) + ")",
                   bench::fmt("%.2e", c.paper_d), bench::fmt("%.3e", static_cast<double>(d)),
                   bench::fmt("%.2e", c.paper_nnz),
                   bench::fmt("%.1e", half_nnz),
                   std::to_string(c.paper_np), std::to_string(np),
                   format_bytes(vlocal), format_bytes(hlocal)});
  }
  table.print();

  bench::section("exact small-system cross-checks (enumeration == DP)");
  bench::Table small({"system", "D (DP)", "D (enum)", "nnz exact", "avg row nnz"});
  const ci::NucleusConfig smalls[] = {{2, 2, 2, 0}, {2, 2, 4, 0}, {3, 3, 2, 0}};
  for (const auto& c : smalls) {
    const auto d = ci::basis_dimension(c);
    const auto stats = ci::hamiltonian_pattern_stats(c, 500'000);
    small.add_row({std::to_string(c.protons) + "p" + std::to_string(c.neutrons) + "n Nmax=" +
                       std::to_string(c.nmax),
                   std::to_string(d), std::to_string(stats.dimension), std::to_string(stats.nnz),
                   bench::fmt("%.1f", stats.avg_row_nnz)});
  }
  small.print();

  std::printf(
      "\nNote: the paper's D column is reproduced essentially exactly by the counting DP.\n"
      "nnz uses a biased random-walk estimate (documented in DESIGN.md); the paper's own\n"
      "testbed experiments use synthetic uniform-gap matrices, not these counts.\n");
  return 0;
}
