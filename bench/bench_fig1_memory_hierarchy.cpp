// Figure 1 reproduction: the memory hierarchy's capacity/latency ladder.
// The paper's figure is illustrative (registers -> cache -> DRAM -> disk
// with ~10x latency steps and the "latency gap" before disk); this bench
// MEASURES the ladder on the host running the reproduction:
//   * dependent-load (pointer-chase) latency at working-set sizes from
//     32 KiB to 256 MiB — resolving L1/L2/L3/DRAM,
//   * cold-ish file read latency and bandwidth through the I/O filter
//     (page cache makes a laptop look like the paper's SSD tier; the
//     relative ladder is the point).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "storage/io_worker.hpp"

using namespace dooc;

namespace {

/// Cycle through a random permutation of `n` pointers; returns ns/load.
double chase_latency(std::size_t bytes) {
  const std::size_t n = bytes / sizeof(std::uint64_t);
  std::vector<std::uint64_t> next(n);
  std::iota(next.begin(), next.end(), 0);
  SplitMix64 rng(0xCAFE);
  // Sattolo's algorithm: a single cycle visiting every slot.
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(next[i], next[j]);
  }
  const std::size_t loads = std::max<std::size_t>(2'000'000, n);
  std::uint64_t p = 0;
  const std::uint64_t t0 = bench::now_ns();
  for (std::size_t i = 0; i < loads; ++i) p = next[p];
  const double seconds = bench::seconds_since(t0);
  // Defeat dead-code elimination.
  if (p == static_cast<std::uint64_t>(-1)) std::printf("!");
  return seconds / static_cast<double>(loads) * 1e9;
}

}  // namespace

int main() {
  bench::section("Fig. 1 — measured memory hierarchy on this host");

  bench::Table table({"tier (working set)", "latency / load"});
  for (std::size_t kib : {32, 256, 2048, 16384, 131072, 262144}) {
    const double ns = chase_latency(kib * 1024);
    std::string tier = std::to_string(kib) + " KiB";
    table.add_row({tier, bench::fmt("%.1f ns", ns)});
  }
  table.print();

  bench::section("storage tier through the asynchronous I/O filter");
  const auto path = std::filesystem::temp_directory_path() /
                    ("dooc_fig1_" + std::to_string(::getpid()));
  const std::size_t file_bytes = 64ull << 20;
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(1 << 20, 'x');
    for (std::size_t i = 0; i < file_bytes / junk.size(); ++i) {
      out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
  }
  storage::IoWorkerPool io(1);
  // Small-read latency.
  RunningStats lat;
  SplitMix64 rng(7);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t off = (rng.next_below(file_bytes / 4096)) * 4096;
    lat.add(bench::time_seconds([&] { io.read(path.string(), off, 4096).get(); }) * 1e6);
  }
  // Streaming bandwidth.
  const double stream_s = bench::time_seconds([&] { io.read(path.string(), 0, file_bytes).get(); });
  const double bw = static_cast<double>(file_bytes) / stream_s;
  std::printf("4 KiB read latency: median-ish mean %.1f us (min %.1f, max %.1f)\n", lat.mean(),
              lat.min(), lat.max());
  std::printf("streaming read bandwidth: %s\n", format_bandwidth(bw).c_str());
  std::filesystem::remove(path);

  std::printf(
      "\npaper's ladder: DRAM ~100 CPU cycles; HDD 10,000+ cycles (the latency gap);\n"
      "SSDs (the paper's opportunity) close that gap to ~10-100 us with GB/s bandwidth.\n");
  return 0;
}
