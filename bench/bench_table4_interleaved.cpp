// Table IV + Fig. 6(b) reproduction: the improved schedule — no global
// synchronization after the SpMV phase (reductions interleave with
// multiplies) and per-node local aggregation of partial results before any
// communication.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "simcluster/testbed.hpp"

using namespace dooc;

int main() {
  bench::section("Table IV — SSD testbed, intra-iteration interleaving + local aggregation");

  struct PaperRow {
    int nodes;
    double time, gflops, bw, nonovl, cpuh;
  };
  const PaperRow paper[] = {
      {1, 293, 0.35, 1.4, 0.00, 0.16},   {4, 335, 1.22, 5.8, 0.13, 0.74},
      {9, 336, 2.74, 12.7, 0.11, 1.68},  {16, 432, 3.79, 18.2, 0.14, 3.84},
      {25, 644, 3.97, 17.8, 0.08, 8.95}, {36, 910, 4.05, 18.5, 0.10, 18.20},
  };

  bench::Table table({"#nodes", "size", "time paper", "time", "GF/s paper", "GF/s", "BW paper",
                      "BW", "non-ovl paper", "non-ovl", "CPU-h/it paper", "CPU-h/it"});
  std::vector<sim::TestbedResult> results;
  for (const auto& row : paper) {
    sim::TestbedExperiment e;
    e.nodes = row.nodes;
    e.mode = solver::ReductionMode::Interleaved;
    const auto r = sim::run_testbed(e);
    results.push_back(r);
    table.add_row({std::to_string(row.nodes), bench::fmt("%.2f TB", e.matrix_terabytes()),
                   bench::fmt("%.0f s", row.time), bench::fmt("%.0f s", r.time_seconds()),
                   bench::fmt("%.2f", row.gflops), bench::fmt("%.2f", r.gflops()),
                   bench::fmt("%.1f GB/s", row.bw),
                   bench::fmt("%.1f GB/s", r.read_bandwidth() / 1e9),
                   bench::fmt("%.0f%%", row.nonovl * 100),
                   bench::fmt("%.0f%%", r.non_overlapped() * 100),
                   bench::fmt("%.2f", row.cpuh), bench::fmt("%.2f", r.cpu_hours_per_iteration())});
  }
  table.print();

  bench::section("Fig. 6(b) — runtime relative to optimal I/O time at 20 GB/s peak");
  bench::Table fig6({"#nodes", "optimal I/O", "runtime", "ratio"});
  for (const auto& r : results) {
    fig6.add_row({std::to_string(r.experiment.nodes), bench::fmt("%.0f s", r.optimal_io_seconds()),
                  bench::fmt("%.0f s", r.time_seconds()),
                  bench::fmt("%.2f", r.relative_to_optimal_io())});
  }
  fig6.print();

  bench::section("interleaving gain over the simple policy (paper: 17%-28% at >= 9 nodes)");
  bench::Table gain({"#nodes", "simple", "interleaved", "gain"});
  for (int nodes : {9, 16, 25, 36}) {
    sim::TestbedExperiment e;
    e.nodes = nodes;
    e.mode = solver::ReductionMode::Simple;
    const double ts = sim::run_testbed(e).time_seconds();
    e.mode = solver::ReductionMode::Interleaved;
    const double ti = sim::run_testbed(e).time_seconds();
    gain.add_row({std::to_string(nodes), bench::fmt("%.0f s", ts), bench::fmt("%.0f s", ti),
                  bench::fmt("%.0f%%", (ts - ti) / ts * 100)});
  }
  gain.print();
  std::printf("\nshape check: >85%% of the runtime covered by filesystem I/O in all\n"
              "configurations (the paper's headline for this experiment).\n");
  return 0;
}
