// Figures 3 & 4 reproduction: the command list emitted for the first two
// iterations of iterated SpMV on a 3×3 grid, and the dependency DAG the
// middleware derives from the input/output arrays.
#include <cstdio>

#include "bench_util.hpp"
#include "solver/iterated_spmv.hpp"

using namespace dooc;

int main() {
  // Graph-only build: no storage needed to reproduce the figures.
  spmv::BlockGrid grid(30, 3);
  spmv::DeployedMatrix matrix;
  matrix.grid = grid;
  matrix.owner.assign(9, 0);
  matrix.nnz.assign(9, 100);
  matrix.bytes.assign(9, 2048);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) matrix.owner[static_cast<std::size_t>(u) * 3 + v] = v;
  }

  solver::VirtualArrayCreator creator;
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) creator.add_durable(matrix.name_of(u, v), 2048, v);
    creator.add_durable(spmv::BlockGrid::vector_name("x", 0, u), grid.part_size(u) * 8, u);
  }

  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = solver::ReductionMode::Simple;
  config.inter_iteration_sync = false;
  solver::IteratedSpmv driver(creator, matrix, config);

  bench::section("Fig. 3 — commands emitted for the first two iterations (3x3 grid)");
  std::printf("%s", driver.command_list().c_str());

  bench::section("Fig. 4 — dependencies derived from the input/output arrays");
  std::printf("%s", driver.dependency_list().c_str());

  bench::section("DAG statistics");
  const auto& graph = driver.graph();
  std::size_t mults = 0, sums = 0;
  for (sched::TaskId t = 0; t < graph.size(); ++t) {
    if (graph.task(t).kind == "multiply") ++mults;
    if (graph.task(t).kind == "sum") ++sums;
  }
  std::printf("per iteration: %zu sub-matrix multiplications, %zu sub-vector additions\n",
              mults / 2, sums / 2);
  std::printf("(paper: \"9 sub-matrix sub-vector multiplications and 6 sub-vector additions\n"
              " are necessary at each iteration\" — 6 counts the pairwise adds of the K=3\n"
              " reductions; our %zu reduction tasks each sum 3 partials = 2 adds: %zu adds)\n",
              sums / 2, 2 * (sums / 2));
  return 0;
}
