// Block-codec sweep: compression ratio and encode/decode throughput of the
// per-block codec (spmv::codec) across codec variant × block format ×
// matrix kind, plus a small end-to-end iterated-SpMV makespan comparison
// (raw vs adaptive) on a throttled device.
//
// The ratios are a pure function of the generator seeds and the encoder, so
// they diff exactly against bench/baselines/BENCH_codec.json on any machine
// (the bench_codec_check target); throughputs and wall times are machine-
// dependent and excluded from the gate.
//
// Self-asserts the tentpole acceptance shape: the power-law CSR index
// stream must shrink by at least 1.5x under the delta+varint pass.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "sched/engine.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/codec.hpp"
#include "spmv/generator.hpp"
#include "spmv/sell.hpp"
#include "storage/storage_cluster.hpp"

using namespace dooc;

namespace {

struct Kind {
  const char* name;
  spmv::CsrMatrix matrix;
};

struct Variant {
  const char* name;
  spmv::codec::CodecConfig cfg;
};

std::vector<std::byte> serialize(const spmv::CsrMatrix& m, bool sell) {
  std::vector<std::byte> csr;
  serialize_csr(m, csr);
  if (!sell) return csr;
  std::vector<std::byte> out;
  serialize_sell(spmv::build_sell(spmv::CsrView::from_bytes(csr), 8, 64), out);
  return out;
}

/// Median-of-reps timed pass over `fn`, returning GB/s of `bytes`.
template <typename Fn>
double gbps(std::uint64_t bytes, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double t = bench::time_seconds(fn);
    if (t > 0.0) best = std::max(best, static_cast<double>(bytes) / t / 1e9);
  }
  return best;
}

/// End-to-end leg: 2-iteration SpMV on one node with a throttled device and
/// a budget that forces reloads — where the smaller on-disk blocks pay off.
double end_to_end_makespan(const spmv::codec::CodecConfig& codec) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("dooc_codec_e2e_" + std::to_string(::getpid()) +
                                                 "_" + spmv::codec::mode_name(codec.mode)))
          .string();
  storage::StorageConfig cfg;
  cfg.scratch_root = dir;
  cfg.memory_budget = 8ull << 20;
  cfg.throttle_read_bw = 150e6;
  cfg.codec = codec;
  storage::StorageCluster cluster(1, cfg);

  auto m = spmv::generate_power_law(4096, 4096, 24.0, 1.5, 0xc0dec);
  const auto owner = spmv::column_strip_owner(1);
  const auto deployed = spmv::deploy_matrix(cluster, m, 4, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });
  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  solver::IteratedSpmv driver(cluster, deployed, config);
  sched::Engine engine(cluster, sched::EngineConfig{});
  const double t = bench::time_seconds([&] { driver.run(engine); });
  std::filesystem::remove_all(dir);
  return t;
}

}  // namespace

int main() {
  bench::section("block codec sweep — ratio and throughput per codec x format x matrix kind");

  std::vector<Kind> kinds;
  kinds.push_back({"uniform", spmv::generate_uniform_gap(8192, 8192, 4.0, 0xc0dec)});
  kinds.push_back({"power-law", spmv::generate_power_law(8192, 8192, 16.0, 1.5, 0xc0dec)});
  kinds.push_back({"dense-band", spmv::generate_banded(8192, 48, 8.0)});

  const Variant variants[] = {
      {"on", spmv::codec::CodecConfig{spmv::codec::Mode::On}},
      {"on-noshuffle", [] {
         spmv::codec::CodecConfig c;
         c.mode = spmv::codec::Mode::On;
         c.shuffle_values = false;
         return c;
       }()},
      {"adaptive", spmv::codec::CodecConfig{spmv::codec::Mode::Adaptive}},
  };

  bench::Table table({"kind", "format", "codec", "raw", "ratio", "index ratio", "value ratio",
                      "enc GB/s", "dec GB/s"});
  bench::JsonReport report;
  report.meta("bench", "codec");
  report.meta("rows", static_cast<std::uint64_t>(8192));

  int failures = 0;
  double power_law_csr_index_ratio = 0.0;
  for (const Kind& kind : kinds) {
    for (const bool sell : {false, true}) {
      const std::vector<std::byte> raw = serialize(kind.matrix, sell);
      for (const Variant& variant : variants) {
        spmv::codec::EncodeStats stats;
        auto frame = spmv::codec::encode_block(raw, variant.cfg, &stats);
        double enc_gbps = 0.0;
        double dec_gbps = 0.0;
        if (frame) {
          // Bitwise round-trip is part of the bench contract, not just the
          // unit tests: a codec that is fast but lossy is worthless here.
          const DataBuffer decoded = spmv::codec::decode_block(frame->span(), raw.size());
          if (decoded.size() != raw.size() ||
              std::memcmp(decoded.data(), raw.data(), raw.size()) != 0) {
            std::printf("FAIL: %s/%s/%s round-trip not bitwise identical\n", kind.name,
                        sell ? "sell" : "csr", variant.name);
            ++failures;
          }
          enc_gbps = gbps(raw.size(), [&] {
            auto f = spmv::codec::encode_block(raw, variant.cfg);
          });
          dec_gbps = gbps(raw.size(), [&] {
            auto d = spmv::codec::decode_block(frame->span(), raw.size());
          });
        }
        const double ratio = frame ? stats.ratio() : 1.0;
        const double index_ratio = frame ? stats.index_ratio() : 1.0;
        const double value_ratio =
            frame && stats.value_encoded_bytes > 0
                ? static_cast<double>(stats.value_raw_bytes) / stats.value_encoded_bytes
                : 1.0;
        if (!sell && variant.cfg.mode == spmv::codec::Mode::On &&
            std::string(kind.name) == "power-law") {
          power_law_csr_index_ratio = index_ratio;
        }
        table.add_row({kind.name, sell ? "sell" : "csr", variant.name,
                       format_bytes(static_cast<double>(raw.size())), bench::fmt("%.2fx", ratio),
                       bench::fmt("%.2fx", index_ratio), bench::fmt("%.2fx", value_ratio),
                       bench::fmt("%.2f", enc_gbps), bench::fmt("%.2f", dec_gbps)});
        report.add_record()
            .field("kind", kind.name)
            .field("format", sell ? "sell" : "csr")
            .field("codec", variant.name)
            .field("raw_bytes", static_cast<std::uint64_t>(raw.size()))
            .field("encoded_bytes", frame ? static_cast<std::uint64_t>(frame->size())
                                          : static_cast<std::uint64_t>(raw.size()))
            .field("ratio", ratio)
            .field("index_ratio", index_ratio)
            .field("value_ratio", value_ratio)
            .field("encode_gbps", enc_gbps)
            .field("decode_gbps", dec_gbps);
      }
    }
  }
  table.print();
  std::printf("(index streams carry the win: column deltas varint-pack; f64 values only\n"
              " yield on structured matrices, which is what the adaptive gate is for)\n");

  bench::section("end-to-end — 2-iteration SpMV, throttled device, raw vs adaptive codec");
  const double makespan_raw = end_to_end_makespan(spmv::codec::CodecConfig{});
  const double makespan_adaptive =
      end_to_end_makespan(spmv::codec::CodecConfig{spmv::codec::Mode::Adaptive});
  std::printf("  raw %.2f s   adaptive %.2f s   (%.0f%% of raw)\n", makespan_raw,
              makespan_adaptive, 100.0 * makespan_adaptive / makespan_raw);
  report.meta("makespan_raw_s", makespan_raw);
  report.meta("makespan_adaptive_s", makespan_adaptive);

  // Tentpole acceptance: >= 1.5x reduction of the power-law CSR index stream.
  const bool index_win = power_law_csr_index_ratio >= 1.5;
  std::printf("\npower-law CSR index-stream ratio %.2fx >= 1.50x: %s\n",
              power_law_csr_index_ratio, index_win ? "YES" : "NO");
  if (!index_win) ++failures;

  const std::string artifact = "BENCH_codec.json";
  if (!report.write(artifact)) {
    std::printf("FAILED to write %s\n", artifact.c_str());
    return 1;
  }
  std::printf("wrote %s\n", artifact.c_str());
  return failures == 0 ? 0 : 1;
}
