// Figure 7 reproduction: CPU-hour cost of a single iteration — out-of-core
// iterated SpMV on the SSD testbed (DES) vs in-core MFDn Lanczos on Hopper
// (calibrated model) — including the paper's ★ point: the 3.5 TB matrix
// solved on only 9 nodes at the best per-node bandwidth.
#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/hopper_model.hpp"
#include "simcluster/testbed.hpp"

using namespace dooc;

int main() {
  bench::section("Fig. 7 — CPU-hours per iteration: SSD testbed vs Hopper");

  // SSD-testbed series (Table IV configuration).
  bench::Table ssd({"series", "#nodes (cores)", "matrix", "CPU-h/iter paper", "CPU-h/iter"});
  const double paper_ssd[] = {0.16, 0.74, 1.68, 3.84, 8.95, 18.20};
  const int node_counts[] = {1, 4, 9, 16, 25, 36};
  std::vector<double> ssd_cpuh;
  for (int i = 0; i < 6; ++i) {
    sim::TestbedExperiment e;
    e.nodes = node_counts[i];
    e.mode = solver::ReductionMode::Interleaved;
    const auto r = sim::run_testbed(e);
    ssd_cpuh.push_back(r.cpu_hours_per_iteration());
    ssd.add_row({"SSD testbed", std::to_string(e.nodes) + " (" + std::to_string(8 * e.nodes) + ")",
                 bench::fmt("%.2f TB", e.matrix_terabytes()), bench::fmt("%.2f", paper_ssd[i]),
                 bench::fmt("%.2f", r.cpu_hours_per_iteration())});
  }
  ssd.print();
  std::printf("\n");

  // Hopper series (the four Table II cases).
  bench::Table hopper({"series", "np", "matrix nnz", "CPU-h/iter paper", "CPU-h/iter"});
  const auto model = perfmodel::HopperModel::calibrated();
  const double paper_hopper[] = {0.19, 1.72, 9.70, 96.2};
  int i = 0;
  std::vector<double> hopper_cpuh;
  for (const auto& c : perfmodel::hopper_reference()) {
    const auto p = model.predict(c.dimension, c.nnz, c.np);
    hopper_cpuh.push_back(p.cpu_hours_per_iter(c.np));
    hopper.add_row({"Hopper (MFDn)", std::to_string(c.np), bench::fmt("%.2e", c.nnz),
                    bench::fmt("%.2f", paper_hopper[i]),
                    bench::fmt("%.2f", p.cpu_hours_per_iter(c.np))});
    ++i;
  }
  hopper.print();

  bench::section("the ★ run: 3.5 TB matrix on 9 nodes (best bandwidth per node)");
  sim::TestbedExperiment base;
  base.mode = solver::ReductionMode::Simple;
  const auto star = sim::run_testbed_oversized(9, 36, base);
  std::printf("time %.0f s (paper 1318 s, vs 1172 s on 36 nodes)\n", star.time_seconds());
  std::printf("sustained read bandwidth %.1f GB/s (paper 12.5 GB/s)\n",
              star.read_bandwidth() / 1e9);
  std::printf("CPU-hours per iteration %.2f (paper 6.59)\n", star.cpu_hours_per_iteration());

  bench::section("the paper's comparison points");
  std::printf("9-node out-of-core %.2f CPU-h/iter vs test1128 in-core %.2f — comparable\n",
              ssd_cpuh[2], hopper_cpuh[1]);
  std::printf("36-node out-of-core %.2f CPU-h/iter vs test4560 in-core %.2f — worse (plateau)\n",
              [&] {
                sim::TestbedExperiment e;
                e.nodes = 36;
                e.mode = solver::ReductionMode::Interleaved;
                return sim::run_testbed(e).cpu_hours_per_iteration();
              }(),
              hopper_cpuh[2]);
  const double star_cpuh = star.cpu_hours_per_iteration();
  std::printf("star  9-node/3.5TB %.2f CPU-h/iter vs test4560 in-core %.2f — %s by %.0f%%\n",
              star_cpuh, hopper_cpuh[2], star_cpuh < hopper_cpuh[2] ? "CHEAPER" : "worse",
              (1.0 - star_cpuh / hopper_cpuh[2]) * 100.0);
  std::printf("(paper: 6.59 vs 9.70 CPU-hours, \"significantly (32%%) less\")\n");
  return star_cpuh < hopper_cpuh[2] ? 0 : 1;
}
