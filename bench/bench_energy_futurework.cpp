// Section VI-B future-work reproduction: energy efficiency of the
// out-of-core SSD testbed vs the in-core Hopper runs, and of the paper's
// proposed node-local-SSD redesign (§VI-A) vs the I/O-node testbed.
//
// Times come from the DES testbed runs and the calibrated Hopper model;
// energy from the c.2012 power profile in perfmodel/energy.hpp. The
// interesting output is the ratio, not the absolute kWh.
#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/energy.hpp"
#include "perfmodel/hopper_model.hpp"
#include "simcluster/testbed.hpp"

using namespace dooc;
using perfmodel::EnergyBreakdown;

int main() {
  const perfmodel::PowerProfile power;
  const auto model = perfmodel::HopperModel::calibrated();

  bench::section("energy per Lanczos-iteration-equivalent: out-of-core vs in-core");
  bench::Table table({"configuration", "time/iter", "compute kWh", "DRAM kWh", "storage kWh",
                      "total kWh/iter"});

  // Out-of-core: 9-node testbed on the 3.5 TB matrix (the Fig. 7 star) —
  // 10 I/O nodes powered (the testbed's fixed tax), SSDs busy ~ the
  // I/O-covered fraction of the run.
  sim::TestbedExperiment base;
  base.mode = solver::ReductionMode::Simple;
  const auto star = sim::run_testbed_oversized(9, 36, base);
  const double star_iter_s = star.time_seconds() / base.iterations;
  const auto e_star = perfmodel::testbed_energy(
      power, 9, star_iter_s, /*busy=*/0.7, /*ssd_busy=*/1.0 - star.non_overlapped(),
      /*io_nodes=*/10);
  table.add_row({"SSD testbed 9n + 10 I/O nodes (3.5 TB)", bench::fmt("%.0f s", star_iter_s),
                 bench::fmt("%.2f", e_star.compute_kwh), bench::fmt("%.2f", e_star.dram_kwh),
                 bench::fmt("%.2f", e_star.storage_kwh), bench::fmt("%.2f", e_star.total_kwh())});

  // The paper's proposed redesign: SSDs on the compute nodes, no I/O nodes.
  sim::SimResources local;
  local.node_read_cap = 2.0e9;
  local.aggregate_read_cap = 2.0e9 * 9;
  local.bw_noise = 0.02;
  const auto star_local = sim::run_testbed_oversized(9, 36, base, local);
  const double local_iter_s = star_local.time_seconds() / base.iterations;
  const auto e_local = perfmodel::testbed_energy(
      power, 9, local_iter_s, /*busy=*/0.7, /*ssd_busy=*/1.0 - star_local.non_overlapped(),
      /*io_nodes=*/0, /*ssds_per_io_node=*/0, /*ssds_per_compute_node=*/2);
  table.add_row({"node-local SSDs, 9n (SVI-A design)", bench::fmt("%.0f s", local_iter_s),
                 bench::fmt("%.2f", e_local.compute_kwh), bench::fmt("%.2f", e_local.dram_kwh),
                 bench::fmt("%.2f", e_local.storage_kwh), bench::fmt("%.2f", e_local.total_kwh())});

  // In-core: test4560 on Hopper (the comparable case).
  const auto& c4560 = perfmodel::hopper_reference()[2];
  const auto pred = model.predict(c4560.dimension, c4560.nnz, c4560.np);
  const auto e_hopper = perfmodel::hopper_energy(power, c4560.np, pred.t_iter());
  table.add_row({"Hopper in-core, 4560 cores (test4560)", bench::fmt("%.1f s", pred.t_iter()),
                 bench::fmt("%.2f", e_hopper.compute_kwh), bench::fmt("%.2f", e_hopper.dram_kwh),
                 bench::fmt("%.2f", e_hopper.storage_kwh),
                 bench::fmt("%.2f", e_hopper.total_kwh())});
  table.print();

  const double local_vs_io = e_star.total_kwh() / e_local.total_kwh();
  std::printf(
      "\nfindings (with c.2012 power figures):\n"
      " * the I/O-node testbed spends %.0f%% of its energy keeping 10 always-on I/O\n"
      "   nodes powered — the bottleneck the paper's SVI-A redesign removes;\n"
      " * node-local SSDs cut energy per iteration by %.0f%% (%.2f -> %.2f kWh);\n"
      " * the in-core run (%.2f kWh/iter) remains competitive on *energy* despite\n"
      "   losing on *CPU-hours*: Hopper's 24-core nodes are ~2.5x more core-dense\n"
      "   than the 2009-era testbed nodes, so fewer node-seconds are burned.\n"
      "   The paper's CPU-hour metric and an energy metric need not agree —\n"
      "   exactly why it calls this study \"very interesting\" future work.\n",
      e_star.storage_kwh / e_star.total_kwh() * 100.0,
      (1.0 - 1.0 / local_vs_io) * 100.0, e_star.total_kwh(), e_local.total_kwh(),
      e_hopper.total_kwh());
  return 0;
}
