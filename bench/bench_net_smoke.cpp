// bench_net_smoke: the wire backend end to end, with real processes.
//
// Phase 1 spawns a 4-process doocd cluster over Unix sockets, runs the
// deterministic iterated-SpMV workload through the Coordinator, and
// asserts the gathered result is bitwise identical to the single-process
// sched::Engine on the same deployment. Phase 2 repeats the run and
// SIGKILLs one non-coordinator daemon mid-flight: the run must complete
// through re-queue + durable fallback with the same bitwise result.
//
// Emitted BENCH_net.json: task placement is pinned and dispatch order is
// deterministic, so the traffic counters (cross-node fetch bytes,
// coordinator frames/bytes) are exact on any machine — bench_net_check
// diffs them against bench/baselines/BENCH_net.json with a tight
// threshold. Wall times and fetch latencies are machine-dependent and
// ignored by the gate.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "net/launch.hpp"
#include "net/socket_transport.hpp"
#include "net/spmv_job.hpp"

using namespace dooc;

namespace {

constexpr int kNodes = 4;

struct PhaseResult {
  bool ok = false;
  std::string error;
  net::RunResult run;
  std::vector<double> result;
  std::uint64_t cross_node_fetch_bytes = 0;
  std::uint64_t fetch_frames = 0;
  std::uint64_t durable_fallbacks = 0;
  double fetch_p99_s = 0.0;
  std::uint64_t coord_frames_sent = 0;
  std::uint64_t coord_bytes_sent = 0;
  std::uint64_t coord_bytes_received = 0;
  double wall_s = 0.0;
};

/// One full cluster lifecycle: spawn, deploy, run (optionally killing
/// `kill_node` after `kill_after` completed tasks), gather, report, tear
/// down.
PhaseResult run_phase(const net::SpmvJob& job, const std::string& workdir,
                      net::NodeId kill_node, std::uint64_t kill_after) {
  namespace fs = std::filesystem;
  PhaseResult out;
  const std::uint64_t t0 = bench::now_ns();

  fs::create_directories(workdir + "/durable");
  net::LaunchConfig lcfg;
  lcfg.manifest = net::Manifest::local_unix(workdir, kNodes);
  lcfg.manifest_path = workdir + "/manifest.txt";
  lcfg.durable_dir = workdir + "/durable";
  net::ClusterLauncher launcher(lcfg);
  launcher.spawn_all();

  net::SocketTransportConfig tcfg;
  tcfg.self = net::kCoordinatorId;
  auto transport = net::SocketTransport::client(tcfg);
  for (net::NodeId i = 0; i < kNodes; ++i) {
    if (!transport->connect_peer(i, lcfg.manifest.nodes[i])) {
      out.error = "node " + std::to_string(i) + " did not come up";
      return out;
    }
  }

  net::CoordinatorConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.durable_dir = lcfg.durable_dir;
  net::Coordinator coord(*transport, ccfg);
  job.deploy(coord);
  const auto driver = job.build_graph();

  bool killed = false;
  if (kill_node >= 0) {
    coord.progress_hook = [&](std::uint64_t done) {
      if (!killed && done >= kill_after) {
        killed = true;
        launcher.kill_node(kill_node);
      }
    };
  }

  out.run = coord.run(driver->graph());
  if (!out.run.ok) {
    out.error = "run failed: " + out.run.error;
    launcher.terminate_all();
    return out;
  }
  out.result = job.gather(coord);

  for (const auto& [id, rep] : coord.collect_reports()) {
    (void)id;
    out.cross_node_fetch_bytes += rep.fetch_bytes_in;
    out.fetch_frames += rep.fetches_issued;
    out.durable_fallbacks += rep.durable_fallbacks;
    out.fetch_p99_s = std::max(out.fetch_p99_s, rep.fetch_p99_s);
  }
  const net::TransportCounters tc = transport->counters();
  out.coord_frames_sent = tc.frames_sent;
  out.coord_bytes_sent = tc.bytes_sent;
  out.coord_bytes_received = tc.bytes_received;

  coord.shutdown_cluster();
  transport->close();
  const int failures = launcher.wait_all(5000);
  // The killed daemon was already reaped by kill_node(); survivors must
  // exit cleanly.
  if (failures > 0) {
    out.error = std::to_string(failures) + " daemons exited abnormally";
    return out;
  }
  out.wall_s = bench::seconds_since(t0);
  out.ok = true;
  return out;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  Log::set_level(LogLevel::Error);

  net::SpmvJobConfig jcfg;
  jcfg.n = 2048;
  jcfg.grid_k = 4;
  jcfg.iterations = 3;
  jcfg.num_nodes = kNodes;
  const net::SpmvJob job(jcfg);

  const std::string root = "/tmp/bench_net_smoke." + std::to_string(::getpid());
  fs::create_directories(root + "/scratch");
  int failures = 0;

  bench::section("Wire backend smoke — 4 doocd processes, Unix sockets, iterated SpMV");
  const std::vector<double> expect = job.reference(root + "/scratch");

  const PhaseResult clean = run_phase(job, root + "/clean", -1, 0);
  if (!clean.ok) {
    std::fprintf(stderr, "FAIL: clean phase: %s\n", clean.error.c_str());
    fs::remove_all(root);
    return 1;
  }
  const bool clean_parity = bitwise_equal(clean.result, expect);
  if (!clean_parity) {
    std::printf("FAIL: clean run is not bitwise identical to the in-process engine\n");
    ++failures;
  }

  const PhaseResult kill = run_phase(job, root + "/kill", /*kill_node=*/2, /*kill_after=*/10);
  if (!kill.ok) {
    std::fprintf(stderr, "FAIL: kill phase: %s\n", kill.error.c_str());
    fs::remove_all(root);
    return 1;
  }
  const bool kill_parity = bitwise_equal(kill.result, expect);
  if (!kill_parity) {
    std::printf("FAIL: post-failover result is not bitwise identical\n");
    ++failures;
  }
  if (kill.run.dead_nodes.size() != 1) {
    std::printf("FAIL: expected exactly one dead node, saw %zu\n", kill.run.dead_nodes.size());
    ++failures;
  }

  bench::Table table({"phase", "tasks", "wall", "fetch frames", "fetch bytes", "durable_fb",
                      "fetch p99", "parity"});
  table.add_row({"clean", std::to_string(clean.run.tasks_executed),
                 bench::fmt("%.3f s", clean.wall_s), std::to_string(clean.fetch_frames),
                 std::to_string(clean.cross_node_fetch_bytes),
                 std::to_string(clean.durable_fallbacks),
                 bench::fmt("%.1f us", clean.fetch_p99_s * 1e6),
                 clean_parity ? "bitwise" : "MISMATCH"});
  table.add_row({"kill node 2", std::to_string(kill.run.tasks_executed),
                 bench::fmt("%.3f s", kill.wall_s), std::to_string(kill.fetch_frames),
                 std::to_string(kill.cross_node_fetch_bytes),
                 std::to_string(kill.durable_fallbacks),
                 bench::fmt("%.1f us", kill.fetch_p99_s * 1e6),
                 kill_parity ? "bitwise" : "MISMATCH"});
  table.print();

  bench::JsonReport report;
  report.meta("bench", "net");
  report.meta("nodes", static_cast<std::uint64_t>(kNodes));
  report.meta("n", jcfg.n);
  report.meta("grid_k", static_cast<std::uint64_t>(jcfg.grid_k));
  report.meta("iterations", static_cast<std::uint64_t>(jcfg.iterations));
  report.add_record()
      .field("scenario", "clean_4proc_unix")
      .field("tasks_total", clean.run.tasks_total)
      .field("tasks_executed", clean.run.tasks_executed)
      .field("cross_node_fetch_bytes", clean.cross_node_fetch_bytes)
      .field("fetch_frames", clean.fetch_frames)
      .field("coord_frames_sent", clean.coord_frames_sent)
      .field("coord_bytes_sent", clean.coord_bytes_sent)
      .field("coord_bytes_received", clean.coord_bytes_received)
      .field("parity_ok", static_cast<std::uint64_t>(clean_parity ? 1 : 0))
      .field("wall_s", clean.wall_s)
      .field("fetch_p99_s", clean.fetch_p99_s);
  // Failover traffic depends on where the kill lands in the schedule, so
  // only the invariants (completion + parity) are gate-worthy here.
  report.add_record()
      .field("scenario", "kill_node2_after10")
      .field("tasks_total", kill.run.tasks_total)
      .field("tasks_executed", kill.run.tasks_executed)
      .field("dead_nodes", static_cast<std::uint64_t>(kill.run.dead_nodes.size()))
      .field("parity_ok", static_cast<std::uint64_t>(kill_parity ? 1 : 0))
      .field("wall_s", kill.wall_s)
      .field("fetch_p99_s", kill.fetch_p99_s);

  const std::string artifact = "BENCH_net.json";
  if (!report.write(artifact)) {
    std::fprintf(stderr, "cannot write %s\n", artifact.c_str());
    fs::remove_all(root);
    return 2;
  }
  std::printf("\nwrote %s\n", artifact.c_str());
  fs::remove_all(root);
  if (failures != 0) {
    std::printf("%d acceptance check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("acceptance checks passed: both phases bitwise-match the in-process engine\n");
  return 0;
}
