// Quickstart: out-of-core iterated SpMV in ~60 lines of user code.
//
// What happens:
//  1. a virtual 3-node DOoC cluster is brought up (each node gets a scratch
//     directory — its "SSD");
//  2. a sparse matrix is generated with the paper's uniform-gap model, cut
//     into a 3x3 grid of binary-CSR sub-matrix files and deployed across
//     the nodes' scratch directories;
//  3. four SpMV iterations are described as a task DAG (multiplies +
//     reductions) and executed by the hierarchical data-aware scheduler,
//     with sub-matrices streaming through the storage layer under a small
//     memory budget;
//  4. the result is verified against an in-memory reference.
//
// Run:  ./quickstart [--n=4096] [--nodes=3] [--iterations=4] [--budget-mb=24]
//                    [--trace-out=run.json]
#include <cstdio>
#include <filesystem>

#include "common/options.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/engine.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("n", 4096));
  const int nodes = static_cast<int>(opts.get_int("nodes", 3));
  const int iterations = static_cast<int>(opts.get_int("iterations", 4));
  const auto budget = static_cast<std::uint64_t>(opts.get_int("budget-mb", 24)) << 20;
  // Chrome trace of the run — open in chrome://tracing or ui.perfetto.dev,
  // or summarize with tools/dooc_tracecat.
  const std::string trace_out = opts.get("trace-out", "");
  if (!trace_out.empty()) obs::TraceSession::instance().start(trace_out);

  // 1. Bring up the cluster: storage layer + scratch directories.
  const std::string scratch =
      (std::filesystem::temp_directory_path() / ("dooc_quickstart_" + std::to_string(::getpid())))
          .string();
  storage::StorageConfig cfg;
  cfg.scratch_root = scratch;
  cfg.memory_budget = budget;
  df::TransportStats transport(nodes);
  storage::StorageCluster cluster(nodes, cfg, &transport);
  std::printf("cluster up: %d nodes, %s memory budget each, scratch at %s\n", nodes,
              format_bytes(static_cast<double>(budget)).c_str(), scratch.c_str());

  // 2. Generate and deploy the matrix (paper's uniform-gap model).
  const double d = spmv::choose_gap_parameter(n, n, n * 24);
  spmv::CsrMatrix matrix = spmv::generate_uniform_gap(n, n, d, /*seed=*/2012);
  for (auto& v : matrix.values) v *= 0.05;  // keep iterates bounded
  const auto owner = spmv::column_strip_owner(nodes);
  const auto deployed = spmv::deploy_matrix(cluster, matrix, /*k=*/3, owner);
  std::printf("deployed %llu x %llu matrix (%.1f M non-zeros, %s) as a 3x3 grid of CSR files\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(n),
              static_cast<double>(matrix.nnz()) / 1e6,
              format_bytes(static_cast<double>(deployed.total_bytes())).c_str());

  // 3. Seed x^0 and run the iterated SpMV DAG.
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 1e-4 * static_cast<double>(i % 97); });
  solver::IteratedSpmvConfig config;
  config.iterations = iterations;
  config.mode = solver::ReductionMode::Interleaved;
  solver::IteratedSpmv driver(cluster, deployed, config);
  sched::Engine engine(cluster, {});
  const auto report = driver.run(engine);

  std::printf("\nexecuted %llu tasks in %.3f s (%.2f GFlop/s)\n",
              static_cast<unsigned long long>(report.tasks_executed), report.makespan,
              report.gflops());
  std::printf("storage: %llu disk reads (%s), %llu evictions, %s fetched between nodes\n",
              static_cast<unsigned long long>(report.storage.disk_reads),
              format_bytes(static_cast<double>(report.storage.disk_read_bytes)).c_str(),
              static_cast<unsigned long long>(report.storage.evictions),
              format_bytes(static_cast<double>(report.cross_node_bytes)).c_str());

  if (!trace_out.empty()) {
    const auto events = obs::TraceSession::instance().stop();
    std::printf("\ntrace: %zu events written to %s (open in ui.perfetto.dev, or run\n"
                "       dooc_tracecat %s for a summary)\n",
                events.size(), trace_out.c_str(), trace_out.c_str());
    std::printf("\nobs metrics snapshot:\n%s",
                obs::Metrics::instance().snapshot().to_text().c_str());
  }

  // 4. Verify against a dense in-memory reference.
  std::vector<double> x(n);
  for (std::uint64_t i = 0; i < n; ++i) x[i] = 1.0 + 1e-4 * static_cast<double>(i % 97);
  std::vector<double> y(n);
  for (int it = 0; it < iterations; ++it) {
    matrix.multiply(x, y);
    x.swap(y);
  }
  const auto got = driver.gather_result();
  double max_err = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(got[i] - x[i]) / (1.0 + std::abs(x[i])));
  }
  std::printf("verification vs in-memory reference: max relative error %.2e — %s\n", max_err,
              max_err < 1e-9 ? "OK" : "MISMATCH");

  std::filesystem::remove_all(scratch);
  return max_err < 1e-9 ? 0 : 1;
}
