// Out-of-core eigensolver for a real CI Hamiltonian — the computation the
// paper's middleware was built for (§II), end to end:
//
//  1. build the M-scheme basis of a small nucleus and its sparse 2-body
//     Hamiltonian (ci/),
//  2. deploy it as a grid of binary-CSR files across a virtual DOoC
//     cluster with a deliberately small memory budget (the matrix cannot
//     stay resident — every Lanczos matvec streams it from "disk"),
//  3. run Lanczos with full reorthogonalization; the Lanczos basis itself
//     is flushed to scratch files and re-streamed for reorthogonalization,
//  4. report the lowest eigenvalues ("energies") and residuals.
//
// Run:  ./lanczos_eigen [--protons=2 --neutrons=2 --nmax=2 --two-mj=0]
//                       [--eigenvalues=4] [--nodes=2] [--budget-kb=256]
#include <cstdio>
#include <filesystem>

#include "ci/hamiltonian.hpp"
#include "common/options.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "solver/krylov.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  ci::NucleusConfig nucleus;
  nucleus.protons = static_cast<int>(opts.get_int("protons", 2));
  nucleus.neutrons = static_cast<int>(opts.get_int("neutrons", 2));
  nucleus.nmax = static_cast<int>(opts.get_int("nmax", 2));
  nucleus.two_mj = static_cast<int>(opts.get_int("two-mj", 0));
  const int wanted = static_cast<int>(opts.get_int("eigenvalues", 4));
  const int nodes = static_cast<int>(opts.get_int("nodes", 2));
  const auto budget = static_cast<std::uint64_t>(opts.get_int("budget-kb", 256)) << 10;

  std::printf("nucleus: Z=%d N=%d, Nmax=%d, 2Mj=%d\n", nucleus.protons, nucleus.neutrons,
              nucleus.nmax, nucleus.two_mj);
  const auto dim = ci::basis_dimension(nucleus);
  std::printf("M-scheme basis dimension D = %llu (exact, via counting DP)\n",
              static_cast<unsigned long long>(dim));

  Stopwatch build_clock;
  const auto h = ci::build_hamiltonian(nucleus);
  std::printf("Hamiltonian: %llu x %llu, %llu non-zeros (%.1f per row), built in %s\n",
              static_cast<unsigned long long>(h.rows), static_cast<unsigned long long>(h.cols),
              static_cast<unsigned long long>(h.nnz()),
              static_cast<double>(h.nnz()) / static_cast<double>(h.rows),
              format_duration(build_clock.seconds()).c_str());

  const std::string scratch =
      (std::filesystem::temp_directory_path() / ("dooc_lanczos_" + std::to_string(::getpid())))
          .string();
  storage::StorageConfig cfg;
  cfg.scratch_root = scratch;
  cfg.memory_budget = budget;
  storage::StorageCluster cluster(nodes, cfg);

  const int k = std::max(2, std::min<int>(4, static_cast<int>(h.rows / 8)));
  const auto owner = spmv::column_strip_owner(nodes);
  const auto deployed = spmv::deploy_matrix(cluster, h, k, owner, "H");
  std::printf("deployed as a %dx%d grid over %d nodes, %s per node budget (matrix is %s)\n", k,
              k, nodes, format_bytes(static_cast<double>(budget)).c_str(),
              format_bytes(static_cast<double>(deployed.total_bytes())).c_str());

  sched::Engine engine(cluster, {});
  solver::LanczosOptions lopts;
  lopts.max_iterations = static_cast<int>(opts.get_int("max-iterations", 80));
  lopts.num_eigenvalues = wanted;
  lopts.tolerance = opts.get_double("tolerance", 1e-8);
  solver::Lanczos lanczos(cluster, deployed, engine, lopts);

  Stopwatch solve_clock;
  const auto result = lanczos.run();
  std::printf("\nLanczos: %d iterations in %s (%s)\n", result.iterations,
              format_duration(solve_clock.seconds()).c_str(),
              result.converged ? "converged" : "NOT converged");
  std::printf("%-6s %-16s %-12s\n", "k", "energy (hw)", "residual");
  for (std::size_t i = 0; i < result.eigenvalues.size(); ++i) {
    std::printf("%-6zu %-16.8f %-12.2e\n", i, result.eigenvalues[i], result.residuals[i]);
  }

  const auto stats = cluster.total_stats();
  std::printf("\nout-of-core traffic: %llu disk reads (%s), %llu disk writes, %llu evictions\n",
              static_cast<unsigned long long>(stats.disk_reads),
              format_bytes(static_cast<double>(stats.disk_read_bytes)).c_str(),
              static_cast<unsigned long long>(stats.disk_writes),
              static_cast<unsigned long long>(stats.evictions));

  std::filesystem::remove_all(scratch);
  return result.converged ? 0 : 1;
}
