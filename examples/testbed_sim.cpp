// Drive the discrete-event SSD-testbed simulator with custom parameters —
// the "what if" tool the paper's Section VI asks for: different node
// counts, aggregate bandwidths (a faster filesystem than GPFS), SSDs
// attached to the compute nodes (no aggregate cap at all), or a different
// per-node workload.
//
// Run:  ./testbed_sim [--nodes=16] [--iterations=4] [--mode=interleaved]
//                     [--node-bw-gbs=1.5] [--aggregate-gbs=18.6]
//                     [--local-ssd] [--submatrix-gb=4] [--blocks=5]
//                     [--trace-out=sim.json]
#include <cstdio>

#include "common/options.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "simcluster/testbed.hpp"

using namespace dooc;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);

  sim::TestbedExperiment e;
  e.nodes = static_cast<int>(opts.get_int("nodes", 16));
  e.iterations = static_cast<int>(opts.get_int("iterations", 4));
  e.mode = opts.get("mode", "interleaved") == "simple" ? solver::ReductionMode::Simple
                                                       : solver::ReductionMode::Interleaved;
  e.blocks_per_node_side = static_cast<int>(opts.get_int("blocks", 5));
  e.submatrix_bytes = static_cast<std::uint64_t>(opts.get_double("submatrix-gb", 4.0) * 1e9);

  sim::SimResources res;
  res.node_read_cap = opts.get_double("node-bw-gbs", 1.5) * 1e9;
  res.aggregate_read_cap = opts.get_double("aggregate-gbs", 18.6) * 1e9;
  if (opts.get_bool("local-ssd", false)) {
    // Section VI-A: "SSD cards should be positioned on the compute nodes
    // themselves" — per-node bandwidth, no shared filesystem bottleneck.
    res.node_read_cap = opts.get_double("node-bw-gbs", 2.0) * 1e9;
    res.aggregate_read_cap = res.node_read_cap * e.nodes;  // no shared cap
    res.bw_noise = 0.02;                                   // no GPFS jitter
  }

  // Virtual-time Chrome trace of the simulated run (same schema as the
  // real backend: task/io lanes per node, timestamps in simulated seconds).
  const std::string trace_out = opts.get("trace-out", "");
  if (!trace_out.empty()) obs::TraceSession::instance().start(trace_out);

  std::printf("testbed: %d nodes, %s policy, %.2f TB matrix, %d iterations\n", e.nodes,
              e.mode == solver::ReductionMode::Simple ? "simple" : "interleaved",
              e.matrix_terabytes(), e.iterations);
  std::printf("I/O: %s per node, %s aggregate%s\n",
              format_bandwidth(res.node_read_cap).c_str(),
              format_bandwidth(res.aggregate_read_cap).c_str(),
              opts.get_bool("local-ssd", false) ? " (node-local SSDs)" : " (shared GPFS)");

  const auto r = sim::run_testbed(e, res);
  std::printf("\ntotal time           %.0f s\n", r.time_seconds());
  std::printf("throughput           %.2f GFlop/s\n", r.gflops());
  std::printf("read bandwidth       %s\n", format_bandwidth(r.read_bandwidth()).c_str());
  std::printf("non-overlapped time  %.0f%%\n", 100.0 * r.non_overlapped());
  std::printf("CPU-hours/iteration  %.2f\n", r.cpu_hours_per_iteration());
  std::printf("vs optimal I/O @20GB/s: %.2fx\n", r.relative_to_optimal_io());

  if (opts.get_bool("compare-local-ssd", false)) {
    sim::SimResources local = res;
    local.node_read_cap = 2.0e9;
    local.aggregate_read_cap = 2.0e9 * e.nodes;
    local.bw_noise = 0.02;
    const auto rl = sim::run_testbed(e, local);
    std::printf("\nwith node-local SSDs (Section VI-A design): %.0f s (%.0f%% faster), %.2f "
                "CPU-h/iter\n",
                rl.time_seconds(), 100.0 * (1.0 - rl.time_seconds() / r.time_seconds()),
                rl.cpu_hours_per_iteration());
  }

  if (!trace_out.empty()) {
    const auto events = obs::TraceSession::instance().stop();
    std::printf("\ntrace: %zu virtual-time events written to %s\n", events.size(),
                trace_out.c_str());
  }
  return 0;
}
