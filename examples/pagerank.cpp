// PageRank as an iterated-SpMV client: a different domain (graph ranking)
// on the same out-of-core machinery. The web-graph's column-stochastic
// transition matrix is generated, deployed as CSR sub-matrix files, and the
// power iteration x <- alpha P x + (1-alpha) e/n runs with the matvec out
// of core and the damping/teleport handled densely between steps.
//
// Run:  ./pagerank [--pages=8192] [--nodes=2] [--damping=0.85] [--top=10]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "solver/krylov.hpp"
#include "spmv/generator.hpp"

using namespace dooc;

namespace {

/// Synthetic web graph: out-degrees are Zipf-ish, targets biased toward
/// low-numbered "hub" pages; the transition matrix is column-stochastic
/// (entry (i, j) = 1/outdeg(j) when j links to i).
spmv::CsrMatrix make_transition_matrix(std::uint64_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  // Collect links per source, then invert to rows (targets).
  std::vector<std::vector<std::uint32_t>> links_from(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    const int outdeg = 1 + static_cast<int>(rng.next_below(12));
    for (int l = 0; l < outdeg; ++l) {
      // Preferential attachment flavour: square the uniform to bias to hubs.
      const double u = rng.next_double();
      const auto target = static_cast<std::uint32_t>(u * u * static_cast<double>(n));
      links_from[j].push_back(std::min<std::uint32_t>(target, static_cast<std::uint32_t>(n - 1)));
    }
    std::sort(links_from[j].begin(), links_from[j].end());
    links_from[j].erase(std::unique(links_from[j].begin(), links_from[j].end()),
                        links_from[j].end());
  }
  // Rows = targets i; columns = sources j; value 1/outdeg(j).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(n);
  for (std::uint64_t j = 0; j < n; ++j) {
    const double w = 1.0 / static_cast<double>(links_from[j].size());
    for (auto i : links_from[j]) {
      rows[i].emplace_back(static_cast<std::uint32_t>(j), w);
    }
  }
  spmv::CsrMatrix m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.push_back(0);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::sort(rows[i].begin(), rows[i].end());
    for (const auto& [col, val] : rows[i]) {
      m.col_idx.push_back(col);
      m.values.push_back(val);
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("pages", 8192));
  const int nodes = static_cast<int>(opts.get_int("nodes", 2));
  const double damping = opts.get_double("damping", 0.85);
  const int top = static_cast<int>(opts.get_int("top", 10));

  const std::string scratch =
      (std::filesystem::temp_directory_path() / ("dooc_pagerank_" + std::to_string(::getpid())))
          .string();
  storage::StorageConfig cfg;
  cfg.scratch_root = scratch;
  cfg.memory_budget = 16ull << 20;
  storage::StorageCluster cluster(nodes, cfg);

  std::printf("building a synthetic web graph with %llu pages...\n",
              static_cast<unsigned long long>(n));
  const auto p = make_transition_matrix(n, 0x9a9e);
  const auto owner = spmv::column_strip_owner(nodes);
  const auto deployed = spmv::deploy_matrix(cluster, p, /*k=*/4, owner, "P");
  std::printf("transition matrix: %llu links, deployed as a 4x4 grid over %d nodes\n",
              static_cast<unsigned long long>(p.nnz()), nodes);

  sched::Engine engine(cluster, {});
  solver::DistVectorOps vecs(cluster, deployed.grid,
                             [&deployed](int u, int v) { return deployed.owner_of(u, v); });
  solver::SpmvStepper stepper(cluster, deployed, engine, "pr");

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  const double teleport = (1.0 - damping) / static_cast<double>(n);
  int iterations = 0;
  double delta = 1.0;
  for (int it = 0; it < 100 && delta > 1e-10; ++it) {
    vecs.create_from("pr", it, rank);
    stepper.step(it);  // out-of-core P * rank
    const auto px = vecs.gather("pr", it + 1);
    vecs.remove("pr", it);
    vecs.remove("pr", it + 1);
    delta = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double next = damping * px[i] + teleport;
      delta += std::abs(next - rank[i]);
      rank[i] = next;
    }
    // Mass lost to dangling pages is redistributed uniformly.
    const double mass = std::accumulate(rank.begin(), rank.end(), 0.0);
    for (auto& r : rank) r += (1.0 - mass) / static_cast<double>(n);
    iterations = it + 1;
  }
  std::printf("converged after %d iterations (L1 delta %.2e)\n", iterations, delta);

  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + top, order.end(),
                    [&](std::uint64_t a, std::uint64_t b) { return rank[a] > rank[b]; });
  std::printf("\n%-6s %-10s %-12s\n", "rank", "page", "score");
  for (int i = 0; i < top; ++i) {
    std::printf("%-6d %-10llu %-12.3e\n", i + 1, static_cast<unsigned long long>(order[i]),
                rank[order[i]]);
  }

  // Sanity: the ranking must be biased toward the hub pages by construction.
  const bool hubs_on_top = order[0] < n / 8;
  std::printf("\nhub bias check (top page among the first n/8): %s\n",
              hubs_on_top ? "OK" : "UNEXPECTED");
  std::filesystem::remove_all(scratch);
  return hubs_on_top ? 0 : 1;
}
