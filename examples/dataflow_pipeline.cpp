// The filter-stream programming model itself (the DataCutter layer under
// DOoC): a streaming histogram pipeline with a replicated, stateless
// worker stage spread across virtual nodes — the paper's transparent-copy
// data parallelism, demonstrated without any of the storage/scheduler
// machinery on top.
//
//   generator --(records)--> parser x3 --(values)--> histogrammer
//
// Run:  ./dataflow_pipeline [--records=200000] [--nodes=2] [--copies=3]
#include <atomic>
#include <cstdio>

#include "common/options.hpp"
#include "common/serialize.hpp"
#include "dataflow/layout.hpp"
#include "dataflow/runtime.hpp"

using namespace dooc;
using namespace dooc::df;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const int records = static_cast<int>(opts.get_int("records", 200000));
  const int nodes = static_cast<int>(opts.get_int("nodes", 2));
  const int copies = static_cast<int>(opts.get_int("copies", 3));

  std::atomic<std::uint64_t> parsed{0};
  std::vector<std::atomic<std::uint64_t>> histogram(16);

  Layout layout;
  // Producer: emits batches of CSV-ish records.
  layout.add_filter("generator", [&] {
    return std::make_unique<LambdaFilter>([&, records](FilterContext& ctx) {
      BinaryWriter writer;
      int in_batch = 0;
      for (int i = 0; i < records; ++i) {
        writer.put_string("record," + std::to_string(i) + "," + std::to_string(i % 16));
        if (++in_batch == 256 || i + 1 == records) {
          ctx.output("out").send(writer.take(), static_cast<std::uint64_t>(i));
          in_batch = 0;
        }
      }
    });
  });

  // Stateless parser: replicable, so declare `copies` transparent copies
  // spread round-robin over the virtual nodes. The runtime distributes
  // batches among them demand-driven.
  std::vector<NodeId> placement;
  for (int c = 0; c < copies; ++c) placement.push_back(c % nodes);
  layout.add_filter(
      "parser",
      [&] {
        return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
          while (auto msg = ctx.input("in").receive()) {
            BinaryReader reader(msg->payload);
            BinaryWriter writer;
            std::uint64_t n = 0;
            while (!reader.exhausted()) {
              const std::string record = reader.get_string();
              const auto comma = record.rfind(',');
              writer.put<std::uint32_t>(
                  static_cast<std::uint32_t>(std::stoul(record.substr(comma + 1))));
              ++n;
            }
            parsed.fetch_add(n, std::memory_order_relaxed);
            ctx.output("out").send(writer.take(), msg->tag);
          }
        });
      },
      placement);

  // Consumer: tallies the histogram (placed on the last node).
  layout.add_filter(
      "histogrammer",
      [&] {
        return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
          while (auto msg = ctx.input("in").receive()) {
            for (auto v : msg->payload.as<std::uint32_t>()) {
              histogram[v % 16].fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      },
      {nodes - 1});

  layout.connect("generator", "out", "parser", "in", /*capacity=*/8);
  layout.connect("parser", "out", "histogrammer", "in", /*capacity=*/8);

  Runtime runtime(nodes);
  runtime.run(layout);

  std::printf("parsed %llu records through %d transparent parser copies on %d nodes\n",
              static_cast<unsigned long long>(parsed.load()), copies, nodes);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    total += histogram[b].load();
    std::printf("bucket %2zu: %llu\n", b, static_cast<unsigned long long>(histogram[b].load()));
  }
  std::printf("cross-node traffic: %s\n",
              std::to_string(runtime.transport().cross_node_bytes()).c_str());
  for (const auto& [name, stats] : runtime.stream_stats()) {
    std::printf("stream %-28s %6llu msgs  %10llu bytes\n", name.c_str(),
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bytes));
  }
  const bool ok = total == static_cast<std::uint64_t>(records);
  std::printf("%s\n", ok ? "OK: every record accounted for exactly once"
                         : "ERROR: record count mismatch");
  return ok ? 0 : 1;
}
