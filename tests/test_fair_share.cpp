// dooc::FairShare — WDRR arbitration of the shared inflight-load budget:
//   * single-tenant behaviour is bit-for-bit the legacy admission rule
//     (admit unless something is in flight AND the load would overflow the
//     budget; an oversized load flies alone);
//   * WDRR deficits grant budget in proportion to tenant weights;
//   * priority tiers are strict, with the aging override as the lower
//     tiers' progress guarantee — exercised under a fake clock (callers
//     pass now_ns, so no sleeping is involved);
//   * the share cap only binds while another tenant is waiting;
//   * retire() with charges still in flight drains through release().
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/fair_share.hpp"

namespace dooc {
namespace {

FairShareConfig small_cfg() {
  FairShareConfig cfg;
  cfg.budget_bytes = 1000;
  cfg.quantum_bytes = 100;
  cfg.share_cap = 0.5;
  cfg.starvation_ns = 1000;
  return cfg;
}

TEST(FairShareTest, UnlimitedBudgetAdmitsEverything) {
  FairShare fs;  // budget_bytes = 0
  EXPECT_TRUE(fs.try_admit(kDefaultTenant, 1ull << 40, false));
  fs.charge(kDefaultTenant, 1ull << 40);
  EXPECT_TRUE(fs.try_admit(kDefaultTenant, 1ull << 40, true));
  fs.release(kDefaultTenant, 1ull << 40);
}

TEST(FairShareTest, SingleTenantMatchesTheLegacyAdmissionRule) {
  FairShare fs(small_cfg());
  // Nothing in flight: even an oversized load flies alone.
  EXPECT_TRUE(fs.try_admit(kDefaultTenant, 5000, false));
  fs.charge(kDefaultTenant, 600);
  EXPECT_FALSE(fs.try_admit(kDefaultTenant, 500, false)) << "600 + 500 overflows the budget";
  EXPECT_TRUE(fs.try_admit(kDefaultTenant, 400, false));
  fs.release(kDefaultTenant, 600);
  EXPECT_TRUE(fs.try_admit(kDefaultTenant, 500, false));
  EXPECT_EQ(fs.inflight_total(), 0u);
}

TEST(FairShareTest, WdrrGrantsTrackWeights) {
  FairShareConfig cfg;
  cfg.budget_bytes = 1ull << 30;  // never the binding constraint here
  cfg.quantum_bytes = 100;        // << head size, so grants need many rounds
  cfg.share_cap = 1.0;
  cfg.starvation_ns = UINT64_MAX;  // aging disabled: pure WDRR
  FairShare fs(cfg);
  fs.set_tenant(1, 3.0);
  fs.set_tenant(2, 1.0);

  int grants[2] = {0, 0};
  for (int i = 0; i < 400; ++i) {
    const std::vector<FairShare::Head> heads = {{1, 1000, 0}, {2, 1000, 0}};
    const TenantId t = fs.pick(heads, /*now_ns=*/0);
    ASSERT_NE(t, FairShare::kNone);
    ++grants[t - 1];
    fs.charge(t, 1000);
    fs.release(t, 1000);  // loads complete instantly: only deficits matter
  }
  // Weight 3 vs 1: tenant 1 should collect ~3/4 of the grants.
  EXPECT_NEAR(static_cast<double>(grants[0]) / 400.0, 0.75, 0.05);
  EXPECT_GT(grants[1], 0) << "the lighter tenant must still progress";
}

TEST(FairShareTest, PriorityTiersAreStrict) {
  FairShareConfig cfg;
  cfg.budget_bytes = 1ull << 30;
  cfg.quantum_bytes = 1000;  // one round of credit covers a head
  cfg.share_cap = 1.0;
  cfg.starvation_ns = UINT64_MAX;
  FairShare fs(cfg);
  fs.set_tenant(1, 1.0, /*priority=*/0);
  fs.set_tenant(2, 1.0, /*priority=*/5);

  for (int i = 0; i < 20; ++i) {
    const std::vector<FairShare::Head> heads = {{1, 1000, 0}, {2, 1000, 0}};
    const TenantId t = fs.pick(heads, 0);
    EXPECT_EQ(t, 2u) << "the higher tier arbitrates first, every time";
    fs.charge(t, 1000);
    fs.release(t, 1000);
  }
  // With the high tier idle, the low tier is served.
  const std::vector<FairShare::Head> low = {{1, 1000, 0}};
  EXPECT_EQ(fs.pick(low, 0), 1u);
}

TEST(FairShareTest, AgingOverrideBeatsPriorityUnderAFakeClock) {
  FairShareConfig cfg;
  cfg.budget_bytes = 10000;
  cfg.quantum_bytes = 1000;
  cfg.share_cap = 1.0;
  cfg.starvation_ns = 1000;
  FairShare fs(cfg);
  fs.set_tenant(1, 4.0, /*priority=*/9);
  fs.set_tenant(2, 1.0, /*priority=*/0);

  // Tenant 2's head has waited >= starvation_ns at now = 1100; tenant 1's
  // has not. The override trumps tier and weight.
  const std::vector<FairShare::Head> heads = {{1, 500, 900}, {2, 500, 0}};
  EXPECT_EQ(fs.pick(heads, /*now_ns=*/1100), 2u);
  EXPECT_EQ(fs.starvation_overrides(), 1u);
  fs.charge(2, 500);
  fs.release(2, 500);

  // But even a starved head cannot jump a full budget.
  fs.charge(1, 10000);
  const std::vector<FairShare::Head> starved = {{2, 500, 0}};
  EXPECT_EQ(fs.pick(starved, /*now_ns=*/5000), FairShare::kNone);
  EXPECT_EQ(fs.starvation_overrides(), 1u) << "a refused override must not count";
  fs.release(1, 10000);
}

TEST(FairShareTest, ShareCapOnlyBindsWhileContended) {
  FairShare fs(small_cfg());  // budget 1000, cap 0.5 -> 500 bytes
  fs.charge(1, 400);

  // Uncontended: only the global budget applies.
  EXPECT_TRUE(fs.try_admit(1, 200, /*others_waiting=*/false));
  // Contended: 400 + 200 > 500 trips the starvation guard...
  EXPECT_FALSE(fs.try_admit(1, 200, /*others_waiting=*/true));
  EXPECT_TRUE(fs.try_admit(1, 50, /*others_waiting=*/true));
  // ...but a tenant holding nothing always gets its first load.
  EXPECT_TRUE(fs.try_admit(2, 200, /*others_waiting=*/true));

  // pick() applies the same cap when more than one head competes.
  const std::vector<FairShare::Head> heads = {{1, 200, 0}, {2, 200, 0}};
  EXPECT_EQ(fs.pick(heads, 0), 2u) << "the hoarder waits, the empty-handed tenant starts";
  fs.release(1, 400);
}

TEST(FairShareTest, RetireKeepsDrainingOutstandingCharges) {
  FairShare fs(small_cfg());
  fs.set_tenant(7, 2.0, 1);
  fs.charge(7, 300);
  fs.retire(7);
  EXPECT_EQ(fs.inflight(7), 300u) << "retiring never forgets budget still in flight";
  fs.release(7, 300);
  EXPECT_EQ(fs.inflight(7), 0u);
  EXPECT_EQ(fs.inflight_total(), 0u);
  fs.retire(99);  // unknown tenant: a no-op
}

TEST(FairShareTest, PickHandlesEmptyAndBudgetFullQueues) {
  FairShare fs(small_cfg());
  EXPECT_EQ(fs.pick({}, 0), FairShare::kNone);
  fs.charge(1, 1000);
  const std::vector<FairShare::Head> heads = {{2, 500, 0}};
  EXPECT_EQ(fs.pick(heads, 0), FairShare::kNone) << "no room: the head stays parked";
  fs.release(1, 1000);
  EXPECT_EQ(fs.pick(heads, 0), 2u);
}

}  // namespace
}  // namespace dooc
