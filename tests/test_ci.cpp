#include <gtest/gtest.h>

#include <set>

#include "ci/hamiltonian.hpp"
#include "ci/ho_basis.hpp"
#include "ci/mscheme.hpp"

namespace dooc::ci {
namespace {

TEST(HoBasis, ShellCountsMatchClosedForm) {
  // Shell N holds (N+1)(N+2) m-states per species.
  for (int shell = 0; shell <= 6; ++shell) {
    EXPECT_EQ(HoBasis::states_in_shell(shell), (shell + 1) * (shell + 2));
  }
  const HoBasis basis(4);
  EXPECT_EQ(static_cast<int>(basis.num_states()), HoBasis::states_up_to_shell(4));
}

TEST(HoBasis, StateQuantumNumbersAreConsistent) {
  const HoBasis basis(5);
  for (const auto& s : basis.states()) {
    EXPECT_EQ(s.quanta(), 2 * s.n + s.l);
    EXPECT_LE(s.quanta(), 5);
    EXPECT_LE(std::abs(s.twomj), s.twoj);
    EXPECT_EQ(std::abs(s.twomj) % 2, 1);  // half-integral m_j
    EXPECT_TRUE(s.twoj == 2 * s.l + 1 || s.twoj == std::abs(2 * s.l - 1));
  }
}

TEST(HoBasis, OrbitalLabels) {
  const HoBasis basis(2);
  // Lowest orbitals: 0s1/2, 0p3/2 (or 0p1/2 depending on order), ...
  EXPECT_EQ(basis.orbitals()[0].label(), "0s1/2");
}

TEST(MinimalQuanta, FillsLowestShells) {
  EXPECT_EQ(minimal_quanta(0), 0);
  EXPECT_EQ(minimal_quanta(2), 0);   // both in the s-shell
  EXPECT_EQ(minimal_quanta(3), 1);   // one forced into the p-shell
  EXPECT_EQ(minimal_quanta(5), 3);   // 2 + 3x1 quanta (10B per-species N0)
  EXPECT_EQ(minimal_quanta(8), 6);   // full p-shell occupancy
}

TEST(MScheme, CountingMatchesEnumerationAcrossConfigs) {
  // DP count vs explicit enumeration for a family of small systems.
  const NucleusConfig configs[] = {
      {1, 1, 2, 0}, {1, 1, 3, 2}, {2, 1, 2, 1}, {2, 2, 2, 0},
      {2, 2, 3, 2}, {3, 2, 1, 1}, {3, 3, 2, 0},
  };
  for (const auto& c : configs) {
    const auto d = basis_dimension(c);
    const auto dets = enumerate_basis(c);
    EXPECT_EQ(d, dets.size()) << "Z=" << c.protons << " N=" << c.neutrons
                              << " Nmax=" << c.nmax << " 2M=" << c.two_mj;
  }
}

TEST(MScheme, EnumeratedDeterminantsSatisfyAllConstraints) {
  const NucleusConfig c{2, 2, 2, 0};
  const HoBasis basis(c.max_shell());
  const int max_total = c.n0() + c.nmax;
  const int want_parity = (c.n0() + c.nmax) % 2;
  std::set<std::pair<std::vector<std::uint16_t>, std::vector<std::uint16_t>>> seen;
  for (const auto& det : enumerate_basis(c)) {
    EXPECT_EQ(static_cast<int>(det.proton_states.size()), 2);
    EXPECT_EQ(static_cast<int>(det.neutron_states.size()), 2);
    EXPECT_LE(determinant_quanta(basis, det), max_total);
    EXPECT_EQ(determinant_quanta(basis, det) % 2, want_parity);
    EXPECT_EQ(determinant_twom(basis, det), 0);
    // Pauli: strictly increasing state indices.
    for (std::size_t i = 1; i < det.proton_states.size(); ++i) {
      EXPECT_LT(det.proton_states[i - 1], det.proton_states[i]);
    }
    EXPECT_TRUE(seen.emplace(det.proton_states, det.neutron_states).second) << "duplicate";
  }
}

TEST(MScheme, DimensionGrowsExponentiallyWithNmax) {
  std::uint64_t prev = 0;
  for (int nmax = 0; nmax <= 6; nmax += 2) {
    const auto d = basis_dimension({3, 3, nmax, 0});
    EXPECT_GT(d, prev);
    if (prev > 0) EXPECT_GT(d, 3 * prev);  // super-linear growth
    prev = d;
  }
}

TEST(MScheme, PaperTable1DimensionsReproduced) {
  // Table I of the paper: 10B (Z=5, N=5) at (Nmax, Mj) — exact D via DP.
  EXPECT_NEAR(static_cast<double>(basis_dimension({5, 5, 7, 0})), 4.66e7, 0.01e7);
  EXPECT_NEAR(static_cast<double>(basis_dimension({5, 5, 8, 2})), 1.60e8, 0.01e8);
}

TEST(MScheme, EnumerationLimitEnforced) {
  EXPECT_THROW(enumerate_basis({5, 5, 7, 0}, 1000), InvalidArgument);
}

TEST(MScheme, HigherMjShrinksBasis) {
  const auto d0 = basis_dimension({3, 3, 2, 0});
  const auto d4 = basis_dimension({3, 3, 2, 8});
  EXPECT_GT(d0, d4);
}

TEST(Hamiltonian, MatrixIsSymmetricWithCorrectDimension) {
  const NucleusConfig c{2, 2, 2, 0};
  const auto h = build_hamiltonian(c);
  const auto d = basis_dimension(c);
  EXPECT_EQ(h.rows, d);
  EXPECT_EQ(h.cols, d);
  h.validate();

  // Symmetry of the pattern and values.
  auto at = [&](std::uint64_t i, std::uint64_t j) -> double {
    for (std::uint64_t k = h.row_ptr[i]; k < h.row_ptr[i + 1]; ++k) {
      if (h.col_idx[k] == j) return h.values[k];
    }
    return 0.0;
  };
  for (std::uint64_t i = 0; i < h.rows; i += 7) {
    for (std::uint64_t k = h.row_ptr[i]; k < h.row_ptr[i + 1]; ++k) {
      EXPECT_DOUBLE_EQ(at(h.col_idx[k], i), h.values[k]);
    }
  }
}

TEST(Hamiltonian, SparsityMatchesTwoBodySelectionRule) {
  // Every stored off-diagonal entry connects determinants differing in at
  // most two single-particle states.
  const NucleusConfig c{2, 1, 2, 1};
  const auto dets = enumerate_basis(c);
  const auto h = build_hamiltonian(c);
  auto differences = [](const Determinant& a, const Determinant& b) {
    int diff = 0;
    auto count = [&](const std::vector<std::uint16_t>& x, const std::vector<std::uint16_t>& y) {
      for (auto s : x) {
        if (std::find(y.begin(), y.end(), s) == y.end()) ++diff;
      }
    };
    count(a.proton_states, b.proton_states);
    count(a.neutron_states, b.neutron_states);
    return diff;
  };
  for (std::uint64_t i = 0; i < h.rows; ++i) {
    for (std::uint64_t k = h.row_ptr[i]; k < h.row_ptr[i + 1]; ++k) {
      const auto j = h.col_idx[k];
      EXPECT_LE(differences(dets[i], dets[j]), 2);
    }
  }
}

TEST(Hamiltonian, PatternStatsAgreeWithBuiltMatrix) {
  const NucleusConfig c{2, 2, 2, 0};
  const auto stats = hamiltonian_pattern_stats(c);
  const auto h = build_hamiltonian(c);
  EXPECT_EQ(stats.dimension, h.rows);
  EXPECT_EQ(stats.nnz, h.nnz());
  EXPECT_NEAR(stats.avg_row_nnz, static_cast<double>(h.nnz()) / h.rows, 1e-12);
}

TEST(Hamiltonian, PatternIsExhaustive) {
  // Brute-force cross-check: every pair differing by <= 2 states (with
  // matching symmetries there's no further selection in our model) must
  // appear in the pattern.
  const NucleusConfig c{1, 1, 2, 0};
  const auto dets = enumerate_basis(c);
  const auto h = build_hamiltonian(c);
  auto has_entry = [&](std::uint64_t i, std::uint64_t j) {
    for (std::uint64_t k = h.row_ptr[i]; k < h.row_ptr[i + 1]; ++k) {
      if (h.col_idx[k] == j) return true;
    }
    return false;
  };
  auto differences = [](const Determinant& a, const Determinant& b) {
    int diff = 0;
    auto count = [&](const std::vector<std::uint16_t>& x, const std::vector<std::uint16_t>& y) {
      for (auto s : x) {
        if (std::find(y.begin(), y.end(), s) == y.end()) ++diff;
      }
    };
    count(a.proton_states, b.proton_states);
    count(a.neutron_states, b.neutron_states);
    return diff;
  };
  for (std::uint64_t i = 0; i < dets.size(); ++i) {
    for (std::uint64_t j = 0; j < dets.size(); ++j) {
      if (differences(dets[i], dets[j]) <= 2) {
        EXPECT_TRUE(has_entry(i, j)) << i << "," << j;
      } else {
        EXPECT_FALSE(has_entry(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(Hamiltonian, ConnectivityEstimateTracksExactAverage) {
  const NucleusConfig c{2, 2, 2, 0};
  const auto exact = hamiltonian_pattern_stats(c);
  const auto est = estimate_connectivity(c, 300, 99);
  // The walk is biased toward high-connectivity rows; accept 35% error.
  EXPECT_NEAR(est.avg_row_nnz, exact.avg_row_nnz, 0.35 * exact.avg_row_nnz);
  EXPECT_GT(est.estimated_nnz, exact.nnz / 2);
  EXPECT_LT(est.estimated_nnz, exact.nnz * 2);
}

TEST(Hamiltonian, BuildIsDeterministic) {
  const NucleusConfig c{2, 1, 2, 1};
  const auto h1 = build_hamiltonian(c);
  const auto h2 = build_hamiltonian(c);
  EXPECT_EQ(h1.col_idx, h2.col_idx);
  EXPECT_EQ(h1.values, h2.values);
}

}  // namespace
}  // namespace dooc::ci
