// Solver tests: tridiagonal eigensolver against closed forms, then the full
// out-of-core Lanczos / CG / power-iteration drivers against dense
// references on the real backend.
#include <gtest/gtest.h>

#include "solver/krylov.hpp"
#include "spmv/generator.hpp"
#include "test_util.hpp"

namespace dooc::solver {
namespace {

// ---------------------------------------------------------------------------
// Tridiagonal eigensolver
// ---------------------------------------------------------------------------

TEST(Tridiag, LaplacianEigenvaluesMatchClosedForm) {
  // T = tridiag(-1, 2, -1) of size n: lambda_k = 2 - 2 cos(k pi / (n+1)).
  const int n = 25;
  std::vector<double> alpha(n, 2.0), beta(n - 1, -1.0);
  const auto values = tridiag_eigenvalues(alpha, beta);
  for (int k = 1; k <= n; ++k) {
    const double expect = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
    EXPECT_NEAR(values[static_cast<std::size_t>(k - 1)], expect, 1e-10);
  }
}

TEST(Tridiag, DiagonalMatrixIsItsOwnSpectrum) {
  std::vector<double> alpha{3.0, -1.0, 7.0, 2.0};
  std::vector<double> beta{0.0, 0.0, 0.0};
  const auto values = tridiag_eigenvalues(alpha, beta);
  EXPECT_EQ(values, (std::vector<double>{-1.0, 2.0, 3.0, 7.0}));
}

TEST(Tridiag, EigenvectorsSatisfyDefinition) {
  std::vector<double> alpha{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> beta{0.5, 0.6, 0.7, 0.8};
  const auto eig = tridiag_eigen(alpha, beta);
  const int n = eig.k;
  for (int j = 0; j < n; ++j) {
    // Check T z = lambda z component-wise.
    for (int i = 0; i < n; ++i) {
      double tz = alpha[static_cast<std::size_t>(i)] * eig.vectors[static_cast<std::size_t>(i) * n + j];
      if (i > 0) tz += beta[static_cast<std::size_t>(i) - 1] * eig.vectors[static_cast<std::size_t>(i - 1) * n + j];
      if (i + 1 < n) tz += beta[static_cast<std::size_t>(i)] * eig.vectors[static_cast<std::size_t>(i + 1) * n + j];
      EXPECT_NEAR(tz, eig.values[static_cast<std::size_t>(j)] * eig.vectors[static_cast<std::size_t>(i) * n + j], 1e-10);
    }
  }
}

TEST(Tridiag, EigenvectorsAreOrthonormal) {
  std::vector<double> alpha{2.0, 2.0, 2.0, 2.0};
  std::vector<double> beta{-1.0, -1.0, -1.0};
  const auto eig = tridiag_eigen(alpha, beta);
  const int n = eig.k;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      double d = 0.0;
      for (int i = 0; i < n; ++i) {
        d += eig.vectors[static_cast<std::size_t>(i) * n + a] *
             eig.vectors[static_cast<std::size_t>(i) * n + b];
      }
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Tridiag, SizeMismatchThrows) {
  EXPECT_THROW(tridiag_eigenvalues({1.0, 2.0}, {}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Out-of-core solvers (full stack)
// ---------------------------------------------------------------------------

struct Stack {
  testutil::TempDir dir{"krylov"};
  storage::StorageCluster cluster;
  sched::Engine engine;

  explicit Stack(int nodes, std::uint64_t memory_budget = 64ull << 20)
      : cluster(nodes,
                [&] {
                  storage::StorageConfig cfg;
                  cfg.scratch_root = dir.str();
                  cfg.memory_budget = memory_budget;
                  return cfg;
                }()),
        engine(cluster, {}) {}
};

std::vector<double> dense_eigenvalues(const spmv::CsrMatrix& m) {
  // Jacobi eigenvalue iteration for small symmetric matrices.
  const int n = static_cast<int>(m.rows);
  std::vector<double> a(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (std::uint64_t k = m.row_ptr[static_cast<std::size_t>(i)];
         k < m.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      a[static_cast<std::size_t>(i) * n + m.col_idx[k]] = m.values[k];
    }
  }
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += std::abs(a[static_cast<std::size_t>(p) * n + q]);
    }
    if (off < 1e-12) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a[static_cast<std::size_t>(p) * n + q];
        if (std::abs(apq) < 1e-14) continue;
        const double theta =
            0.5 * std::atan2(2.0 * apq, a[static_cast<std::size_t>(q) * n + q] -
                                            a[static_cast<std::size_t>(p) * n + p]);
        const double c = std::cos(theta), s = std::sin(theta);
        for (int i = 0; i < n; ++i) {
          const double aip = a[static_cast<std::size_t>(i) * n + p];
          const double aiq = a[static_cast<std::size_t>(i) * n + q];
          a[static_cast<std::size_t>(i) * n + p] = c * aip - s * aiq;
          a[static_cast<std::size_t>(i) * n + q] = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double api = a[static_cast<std::size_t>(p) * n + i];
          const double aqi = a[static_cast<std::size_t>(q) * n + i];
          a[static_cast<std::size_t>(p) * n + i] = c * api - s * aqi;
          a[static_cast<std::size_t>(q) * n + i] = s * api + c * aqi;
        }
      }
    }
  }
  std::vector<double> values(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) values[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i) * n + i];
  std::sort(values.begin(), values.end());
  return values;
}

TEST(Lanczos, LaplacianLowestEigenvaluesMatchClosedForm) {
  Stack stack(1);
  const std::uint64_t n = 60;
  const auto m = spmv::generate_laplacian_1d(n);
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 3, spmv::column_strip_owner(1));

  LanczosOptions opts;
  opts.max_iterations = 60;
  opts.num_eigenvalues = 3;
  opts.tolerance = 1e-9;
  Lanczos lanczos(stack.cluster, deployed, stack.engine, opts);
  const auto result = lanczos.run();

  ASSERT_GE(result.eigenvalues.size(), 3u);
  for (int k = 1; k <= 3; ++k) {
    const double expect = 4.0 * std::pow(std::sin(k * M_PI / (2.0 * (n + 1))), 2);
    EXPECT_NEAR(result.eigenvalues[static_cast<std::size_t>(k - 1)], expect, 1e-7) << "k=" << k;
  }
}

TEST(Lanczos, MultiNodeMatchesDenseJacobi) {
  Stack stack(2);
  auto m = spmv::generate_banded(48, 4, 6.0);
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 4, spmv::column_strip_owner(2));

  LanczosOptions opts;
  opts.max_iterations = 48;
  opts.num_eigenvalues = 4;
  opts.tolerance = 1e-9;
  Lanczos lanczos(stack.cluster, deployed, stack.engine, opts);
  const auto result = lanczos.run();

  const auto dense = dense_eigenvalues(m);
  ASSERT_GE(result.eigenvalues.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.eigenvalues[static_cast<std::size_t>(i)], dense[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(Lanczos, TinyMemoryBudgetStillConverges) {
  // Force the basis and matrix blocks out of core: budget of 4 KiB per
  // node, everything streams through scratch files.
  Stack stack(1, /*memory_budget=*/4 << 10);
  const auto m = spmv::generate_laplacian_1d(40);
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 2, spmv::column_strip_owner(1));

  LanczosOptions opts;
  opts.max_iterations = 40;
  opts.num_eigenvalues = 2;
  opts.tolerance = 1e-8;
  Lanczos lanczos(stack.cluster, deployed, stack.engine, opts);
  const auto result = lanczos.run();
  const double e1 = 4.0 * std::pow(std::sin(M_PI / 82.0), 2);
  EXPECT_NEAR(result.eigenvalues[0], e1, 1e-6);
  // Out-of-core actually happened: blocks were evicted under the budget.
  EXPECT_GT(stack.cluster.node(0).stats().evictions, 0u);
}

TEST(Lanczos, ResidualsShrinkWithIterations) {
  Stack stack(1);
  const auto m = spmv::generate_laplacian_1d(50);
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 2, spmv::column_strip_owner(1));

  LanczosOptions few;
  few.max_iterations = 8;
  few.num_eigenvalues = 1;
  few.tolerance = 1e-14;  // force max iterations
  few.base = "lza";
  const auto r_few = Lanczos(stack.cluster, deployed, stack.engine, few).run();

  LanczosOptions many = few;
  many.max_iterations = 30;
  many.base = "lzb";
  const auto r_many = Lanczos(stack.cluster, deployed, stack.engine, many).run();
  EXPECT_LT(r_many.residuals[0], r_few.residuals[0]);
}

TEST(Lanczos, EigenvectorsHaveSmallResidual) {
  Stack stack(1);
  const auto m = spmv::generate_laplacian_1d(36);
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 2, spmv::column_strip_owner(1));
  LanczosOptions opts;
  opts.max_iterations = 36;
  opts.num_eigenvalues = 2;
  Lanczos lanczos(stack.cluster, deployed, stack.engine, opts);
  const auto result = lanczos.run();
  const auto vectors = lanczos.compute_eigenvectors(result, 2);
  ASSERT_EQ(vectors.size(), 2u);
  for (int j = 0; j < 2; ++j) {
    std::vector<double> av(36);
    m.multiply(vectors[static_cast<std::size_t>(j)], av);
    double res = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < 36; ++i) {
      const double r = av[i] - result.eigenvalues[static_cast<std::size_t>(j)] * vectors[static_cast<std::size_t>(j)][i];
      res += r * r;
      norm += vectors[static_cast<std::size_t>(j)][i] * vectors[static_cast<std::size_t>(j)][i];
    }
    EXPECT_LT(std::sqrt(res), 1e-5);
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-6);
  }
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  Stack stack(2);
  const auto m = spmv::generate_banded(40, 3, 8.0);  // strictly dominant -> SPD
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 4, spmv::column_strip_owner(2));

  std::vector<double> x_true(40);
  for (std::size_t i = 0; i < 40; ++i) x_true[i] = std::sin(0.3 * static_cast<double>(i));
  std::vector<double> b(40);
  m.multiply(x_true, b);

  const auto result = conjugate_gradient(stack.cluster, deployed, stack.engine, b);
  ASSERT_TRUE(result.converged);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(result.x[i], x_true[i], 1e-7);
  // Residual history is monotically informative (last below tolerance).
  EXPECT_LT(result.residual_history.back(), 1e-10);
}

TEST(PowerIteration, FindsDominantEigenvalue) {
  Stack stack(1);
  // Diagonally dominant with one boosted diagonal entry -> clear dominant.
  auto m = spmv::generate_banded(30, 2, 5.0);
  for (std::uint64_t k = m.row_ptr[7]; k < m.row_ptr[8]; ++k) {
    if (m.col_idx[k] == 7) m.values[k] = 25.0;
  }
  const auto deployed = spmv::deploy_matrix(stack.cluster, m, 2, spmv::column_strip_owner(1));
  const auto result = power_iteration(stack.cluster, deployed, stack.engine, 200, 1e-12);
  EXPECT_TRUE(result.converged);
  const auto dense = dense_eigenvalues(m);
  EXPECT_NEAR(result.eigenvalue, dense.back(), 1e-6);
}

}  // namespace
}  // namespace dooc::solver
