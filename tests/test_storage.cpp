#include <gtest/gtest.h>

#include <fstream>
#include <future>

#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc::storage {
namespace {

StorageConfig base_config(const testutil::TempDir& dir) {
  StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 1ull << 20;
  cfg.default_block_size = 4096;
  cfg.io_workers = 2;
  return cfg;
}

TEST(Storage, WriteSealRead) {
  testutil::TempDir dir("wsr");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 64, 64);

  auto w = node.request_write({"v", 0, 64}).get();
  auto span = w.as<double>();
  for (std::size_t i = 0; i < span.size(); ++i) span[i] = static_cast<double>(i);
  w.release();  // seals the block

  auto r = node.request_read({"v", 0, 64}).get();
  auto rs = r.as<double>();
  for (std::size_t i = 0; i < rs.size(); ++i) EXPECT_DOUBLE_EQ(rs[i], static_cast<double>(i));
}

TEST(Storage, ReadBlocksUntilSealed) {
  testutil::TempDir dir("seal");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 16, 16);

  auto w = node.request_write({"v", 0, 16}).get();
  auto read_future = node.request_read({"v", 0, 16});
  EXPECT_EQ(read_future.wait_for(std::chrono::milliseconds(30)), std::future_status::timeout)
      << "read resolved before the writer sealed the block";
  w.as<std::uint64_t>()[0] = 77;
  w.release();
  auto r = read_future.get();
  EXPECT_EQ(r.as<std::uint64_t>()[0], 77u);
}

TEST(Storage, DoubleWriteSameBlockThrows) {
  testutil::TempDir dir("dw");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 16, 16);
  auto w = node.request_write({"v", 0, 16}).get();
  w.release();
  EXPECT_THROW(node.request_write({"v", 0, 16}), ImmutabilityViolation);
}

TEST(Storage, OverlappingUnsealedWritesThrow) {
  testutil::TempDir dir("ow");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 64, 64);
  auto w1 = node.request_write({"v", 0, 32}).get();
  EXPECT_THROW(node.request_write({"v", 16, 32}), ImmutabilityViolation);
  // Disjoint co-writes of the same block are allowed...
  auto w2 = node.request_write({"v", 32, 32}).get();
  // ...and the block seals only after BOTH release.
  auto rf = node.request_read({"v", 0, 64});
  w1.release();
  EXPECT_EQ(rf.wait_for(std::chrono::milliseconds(20)), std::future_status::timeout);
  w2.release();
  rf.get();
}

TEST(Storage, IntervalMustStayWithinOneBlock) {
  testutil::TempDir dir("iv");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 256, 64);
  EXPECT_THROW(node.request_read({"v", 32, 64}), InvalidArgument);   // straddles blocks 0/1
  EXPECT_THROW(node.request_read({"v", 0, 512}), InvalidArgument);   // beyond the array
  EXPECT_THROW(node.request_read({"v", 0, 0}), InvalidArgument);     // empty
  EXPECT_THROW(node.request_read({"ghost", 0, 8}), InvalidArgument); // unknown array
}

TEST(Storage, ImportedFileReadsBack) {
  testutil::TempDir dir("imp");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  const std::string path = node.scratch_dir() + "/payload";
  std::vector<std::uint64_t> data(512);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * i;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * 8));
  }
  node.import_file("payload", path, 1024);

  // Read an interval from the middle of block 2.
  auto r = node.request_read({"payload", 2048 + 64, 256}).get();
  auto span = r.as<std::uint64_t>();
  for (std::size_t i = 0; i < span.size(); ++i) {
    EXPECT_EQ(span[i], (256 + 8 + i) * (256 + 8 + i));
  }
  EXPECT_GE(node.stats().disk_reads, 1u);
}

TEST(Storage, ScanScratchRegistersExistingFiles) {
  testutil::TempDir dir("scan");
  // Pre-create files in the directory the node will adopt.
  const std::string node_dir = dir.str() + "/node0";
  std::filesystem::create_directories(node_dir);
  for (const char* name : {"alpha", "beta"}) {
    std::ofstream out(node_dir + "/" + name, std::ios::binary);
    std::vector<char> junk(128, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  EXPECT_EQ(node.scan_scratch(), 2u);
  EXPECT_TRUE(node.array_meta("alpha").has_value());
  EXPECT_EQ(node.array_meta("beta")->size, 128u);
  auto r = node.request_read({"alpha", 0, 128}).get();
  EXPECT_EQ(static_cast<char>(r.bytes()[0]), 'x');
}

TEST(Storage, EvictionUnderMemoryPressure) {
  testutil::TempDir dir("evict");
  StorageConfig cfg = base_config(dir);
  cfg.memory_budget = 4096;  // room for exactly one 4 KiB block
  StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);

  const std::string path = node.scratch_dir() + "/big";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(4096 * 4, 'y');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  node.import_file("big", path, 4096);

  for (std::uint64_t b = 0; b < 4; ++b) {
    auto r = node.request_read({"big", b * 4096, 4096}).get();
    EXPECT_EQ(static_cast<char>(r.bytes()[0]), 'y');
  }
  EXPECT_GE(node.stats().evictions, 3u);
  EXPECT_LE(node.resident_bytes(), 4096u);
}

TEST(Storage, PinnedBlocksAreNotEvicted) {
  testutil::TempDir dir("pin");
  StorageConfig cfg = base_config(dir);
  cfg.memory_budget = 4096;
  StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  const std::string path = node.scratch_dir() + "/big";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(4096 * 3, 'z');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  node.import_file("big", path, 4096);

  auto pinned = node.request_read({"big", 0, 4096}).get();
  auto r1 = node.request_read({"big", 4096, 4096}).get();
  r1.release();
  auto r2 = node.request_read({"big", 8192, 4096}).get();
  r2.release();
  // The pinned block must still be readable without a disk reload.
  EXPECT_TRUE(node.is_resident({"big", 0, 4096}));
  EXPECT_EQ(static_cast<char>(pinned.bytes()[0]), 'z');
}

TEST(Storage, DirtyBlocksSurviveMemoryPressureUntilFlushed) {
  testutil::TempDir dir("dirty");
  StorageConfig cfg = base_config(dir);
  cfg.memory_budget = 64;  // absurdly small: everything overshoots
  StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  node.create_array("out", 256, 64);
  for (std::uint64_t b = 0; b < 4; ++b) {
    auto w = node.request_write({"out", b * 64, 64}).get();
    w.as<std::uint64_t>()[0] = b;
    w.release();
  }
  // Nothing was flushable, so nothing may have been evicted.
  EXPECT_EQ(node.stats().evictions, 0u);
  for (std::uint64_t b = 0; b < 4; ++b) {
    auto r = node.request_read({"out", b * 64, 64}).get();
    EXPECT_EQ(r.as<std::uint64_t>()[0], b);
  }
}

TEST(Storage, FlushMakesBlocksDurableAndEvictable) {
  testutil::TempDir dir("flush");
  StorageConfig cfg = base_config(dir);
  cfg.memory_budget = 128;
  StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  node.create_array("out", 512, 128);
  for (std::uint64_t b = 0; b < 4; ++b) {
    auto w = node.request_write({"out", b * 128, 128}).get();
    w.as<std::uint64_t>()[0] = 100 + b;
    w.release();
  }
  node.flush_array("out");
  EXPECT_GE(node.stats().disk_writes, 4u);

  // Trigger eviction by loading something else; flushed blocks may now go.
  const std::string path = node.scratch_dir() + "/other";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(128, 'q');
    out.write(junk.data(), 128);
  }
  node.import_file("other", path, 128);
  auto r = node.request_read({"other", 0, 128}).get();
  r.release();
  EXPECT_GE(node.stats().evictions, 1u);

  // Evicted flushed blocks reload from the scratch file with their data.
  for (std::uint64_t b = 0; b < 4; ++b) {
    auto rb = node.request_read({"out", b * 128, 128}).get();
    EXPECT_EQ(rb.as<std::uint64_t>()[0], 100 + b);
  }
}

TEST(Storage, RemoteFetchFromPeerMemory) {
  testutil::TempDir dir("remote");
  df::TransportStats transport(2);
  StorageCluster cluster(2, base_config(dir), &transport);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  n0.create_array("shared", 64, 64);
  auto w = n0.request_write({"shared", 0, 64}).get();
  w.as<double>()[0] = 2.5;
  w.release();

  auto r = n1.request_read({"shared", 0, 64}).get();
  EXPECT_DOUBLE_EQ(r.as<double>()[0], 2.5);
  EXPECT_GE(n1.stats().remote_fetches, 1u);
  EXPECT_GE(transport.cross_node_bytes(), 64u);
  // The copy is now resident on node 1 too.
  EXPECT_TRUE(n1.is_resident({"shared", 0, 64}));
}

TEST(Storage, RemoteReadOfDurableArrayStreamsFromHomeDisk) {
  testutil::TempDir dir("homefetch");
  StorageCluster cluster(2, base_config(dir));
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const std::string path = n0.scratch_dir() + "/data";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<std::uint64_t> vals(16, 31337);
    out.write(reinterpret_cast<const char*>(vals.data()), 128);
  }
  n0.import_file("data", path, 128);

  auto r = n1.request_read({"data", 0, 128}).get();
  EXPECT_EQ(r.as<std::uint64_t>()[5], 31337u);
  EXPECT_GE(n0.stats().disk_reads, 1u) << "home node should have served from disk";
  EXPECT_GE(n1.stats().remote_fetches, 1u);
}

TEST(Storage, CrossNodeReadWaitsForRemoteProducer) {
  testutil::TempDir dir("await");
  StorageCluster cluster(2, base_config(dir));
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  n0.create_array("late", 32, 32);

  // Consumer on node 1 asks before the producer on node 0 has written.
  auto rf = n1.request_read({"late", 0, 32});
  EXPECT_EQ(rf.wait_for(std::chrono::milliseconds(30)), std::future_status::timeout);

  auto w = n0.request_write({"late", 0, 32}).get();
  w.as<std::uint64_t>()[0] = 4242;
  w.release();

  EXPECT_EQ(rf.get().as<std::uint64_t>()[0], 4242u);
}

TEST(Storage, PrefetchWarmsTheCache) {
  testutil::TempDir dir("prefetch");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  const std::string path = node.scratch_dir() + "/data";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(8192, 'p');
    out.write(junk.data(), 8192);
  }
  node.import_file("data", path, 4096);
  EXPECT_FALSE(node.is_resident({"data", 0, 4096}));
  node.prefetch({"data", 0, 4096});
  // Wait for the asynchronous load to land.
  for (int spin = 0; spin < 200 && !node.is_resident({"data", 0, 4096}); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(node.is_resident({"data", 0, 4096}));
  EXPECT_EQ(node.stats().prefetch_requests, 1u);
}

TEST(Storage, ResidencyBitmapTracksBlocks) {
  testutil::TempDir dir("resmap");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 300, 100);  // 3 blocks (last short)
  auto w = node.request_write({"v", 100, 100}).get();
  w.release();
  const auto map = node.residency("v");
  ASSERT_EQ(map.size(), 3u);
  EXPECT_FALSE(map[0]);
  EXPECT_TRUE(map[1]);
  EXPECT_FALSE(map[2]);
}

TEST(Storage, DeleteArrayRemovesEverywhere) {
  testutil::TempDir dir("del");
  StorageCluster cluster(2, base_config(dir));
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  n0.create_array("temp", 64, 64);
  auto w = n0.request_write({"temp", 0, 64}).get();
  w.release();
  auto r = n1.request_read({"temp", 0, 64}).get();
  r.release();

  n0.delete_array("temp");
  EXPECT_THROW(n0.request_read({"temp", 0, 64}), InvalidArgument);
  // Recreating under the same name must work (stale state would throw).
  n0.create_array("temp", 64, 64);
  auto w2 = n0.request_write({"temp", 0, 64}).get();
  w2.release();
}

TEST(Storage, RandomWalkLookupFindsRemoteArrays) {
  testutil::TempDir dir("walk");
  StorageConfig cfg = base_config(dir);
  cfg.lookup = LookupProtocol::RandomWalk;
  StorageCluster cluster(4, cfg);
  cluster.node(2).create_array("needle", 32, 32);
  auto w = cluster.node(2).request_write({"needle", 0, 32}).get();
  w.as<std::uint64_t>()[0] = 1;
  w.release();

  auto r = cluster.node(0).request_read({"needle", 0, 32}).get();
  EXPECT_EQ(r.as<std::uint64_t>()[0], 1u);
}

TEST(Storage, LastShortBlockHasCorrectSize) {
  testutil::TempDir dir("short");
  StorageCluster cluster(1, base_config(dir));
  auto& node = cluster.node(0);
  node.create_array("v", 150, 100);  // blocks: 100 + 50
  auto w = node.request_write({"v", 100, 50}).get();
  EXPECT_EQ(w.bytes().size(), 50u);
  w.release();
  auto r = node.request_read({"v", 100, 50}).get();
  EXPECT_EQ(r.bytes().size(), 50u);
  // Reading past the short block is rejected.
  EXPECT_THROW(node.request_read({"v", 100, 100}), InvalidArgument);
}

TEST(Storage, ConcurrentReadsOfOneBlockStartOneFetch) {
  testutil::TempDir dir("dedup");
  StorageConfig cfg = base_config(dir);
  cfg.throttle_read_bw = 256.0 * 1024;  // ~0.25 s per 64 KB load
  StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);

  const std::string path = dir.str() + "/node0/payload";
  std::filesystem::create_directories(dir.str() + "/node0");
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> data(64 * 1024, 'd');
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  node.import_file("m", path, 64 * 1024);

  auto& started = obs::Metrics::instance().counter("storage.fetch_started", 0);
  auto& deduped = obs::Metrics::instance().counter("storage.fetch_deduped", 0);
  const std::uint64_t started_before = started.get();
  const std::uint64_t deduped_before = deduped.get();

  // Four readers plus a prefetch pile onto the same Loading block while the
  // throttled disk read is still in flight.
  std::vector<std::future<ReadHandle>> reads;
  for (int i = 0; i < 4; ++i) reads.push_back(node.request_read({"m", 0, 1024}));
  node.prefetch({"m", 0, 1024});
  for (auto& f : reads) {
    auto r = f.get();
    EXPECT_EQ(r.bytes()[0], std::byte{'d'});
  }

  EXPECT_EQ(started.get() - started_before, 1u)
      << "concurrent reads of one block must share a single in-flight fetch";
  EXPECT_GE(deduped.get() - deduped_before, 4u);
  EXPECT_EQ(node.stats().disk_reads, 1u);
  EXPECT_EQ(node.inflight_load_bytes(), 0u);
}

TEST(Storage, InflightBudgetDefersLoadsButAllComplete) {
  testutil::TempDir dir("budget");
  StorageConfig cfg = base_config(dir);
  cfg.memory_budget = 8ull << 20;
  cfg.max_inflight_load_bytes = 64 * 1024;  // one block in flight at a time
  // Slow every disk read by 5ms so the issue loop below always outpaces the
  // I/O worker; without this the 64KB reads can complete faster than the
  // main thread issues them and the budget is never contended.
  cfg.fault_plan =
      std::make_shared<fault::FaultPlan>(fault::FaultPlan::parse("latency=1.0:5ms"));
  StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);

  const std::string path = dir.str() + "/node0/payload";
  std::filesystem::create_directories(dir.str() + "/node0");
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> data(8 * 64 * 1024, 'b');
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  node.import_file("m", path, 64 * 1024);

  auto& deferred = obs::Metrics::instance().counter("storage.fetch_deferred", 0);
  const std::uint64_t deferred_before = deferred.get();

  std::vector<std::future<ReadHandle>> reads;
  for (int b = 0; b < 8; ++b) {
    reads.push_back(node.request_read({"m", static_cast<std::uint64_t>(b) * 64 * 1024, 1024}));
  }
  for (auto& f : reads) {
    auto r = f.get();
    EXPECT_EQ(r.bytes()[0], std::byte{'b'});
  }

  EXPECT_GE(deferred.get() - deferred_before, 1u)
      << "a one-block budget must defer at least one of eight demand loads";
  EXPECT_EQ(node.inflight_load_bytes(), 0u);
}

}  // namespace
}  // namespace dooc::storage
