#include <gtest/gtest.h>

#include <thread>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/options.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace dooc {
namespace {

TEST(DataBuffer, AllocatesRequestedSize) {
  DataBuffer b(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_NE(b.data(), nullptr);
  EXPECT_FALSE(b.empty());
}

TEST(DataBuffer, DefaultIsEmpty) {
  DataBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(DataBuffer, CopyAliasesPayload) {
  DataBuffer a(8);
  a.as<std::uint64_t>()[0] = 42;
  DataBuffer b = a;  // NOLINT: intentional alias
  b.as<std::uint64_t>()[0] = 7;
  EXPECT_EQ(a.as<std::uint64_t>()[0], 7u);
  EXPECT_EQ(a, b);
}

TEST(DataBuffer, CloneIsDeep) {
  DataBuffer a(8);
  a.as<std::uint64_t>()[0] = 42;
  DataBuffer b = a.clone();
  b.as<std::uint64_t>()[0] = 7;
  EXPECT_EQ(a.as<std::uint64_t>()[0], 42u);
  EXPECT_NE(a, b);
}

TEST(DataBuffer, AsRejectsMisalignedSize) {
  DataBuffer a(10);
  EXPECT_THROW(a.as<std::uint64_t>(), InvalidArgument);
}

TEST(Serialize, RoundTripsScalarsStringsVectors) {
  BinaryWriter w;
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<double>(3.5);
  w.put_string("hello dooc");
  std::vector<std::uint64_t> vals{1, 2, 3, 5, 8};
  w.put_span<std::uint64_t>(vals);
  DataBuffer buf = w.take();

  BinaryReader r(buf);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.5);
  EXPECT_EQ(r.get_string(), "hello dooc");
  EXPECT_EQ(r.get_vector<std::uint64_t>(), vals);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncationThrows) {
  BinaryWriter w;
  w.put<std::uint32_t>(1);
  DataBuffer buf = w.take();
  BinaryReader r(buf);
  EXPECT_THROW(r.get<std::uint64_t>(), IoError);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, CloseDrainsThenSignalsEos) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, BoundedCapacityBlocksProducer) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  EXPECT_FALSE(q.try_push(2));
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.pop();
  });
  EXPECT_TRUE(q.push(2));  // unblocks when the consumer pops
  consumer.join();
}

TEST(BlockingQueue, ConcurrentProducersConsumers) {
  BlockingQueue<int> q(16);
  constexpr int kPerProducer = 500;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  threads[0].join();
  threads[1].join();
  q.close();
  threads[2].join();
  threads[3].join();
  EXPECT_EQ(sum.load(), 2L * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) futs.push_back(pool.submit([&] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelRangesPartitionIsExact) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_ranges(103, [&](std::size_t b, std::size_t e) {
    std::lock_guard lock(m);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expect = 0;
  for (auto [b, e] : ranges) {
    EXPECT_EQ(b, expect);
    EXPECT_LT(b, e);
    expect = e;
  }
  EXPECT_EQ(expect, 103u);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  SplitMix64 rng(7);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_double();
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Formatting, HumanReadableUnits) {
  EXPECT_EQ(format_bytes(1536.0), "1.50 KiB");
  EXPECT_EQ(format_bandwidth(18.7e9), "18.70 GB/s");
  EXPECT_EQ(format_count(12.8e9), "12.80 G");
  EXPECT_EQ(format_duration(0.5), "500.0 ms");
}

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(1);
  EXPECT_NE(a2.next(), c.next());
}

TEST(SplitMix64, BoundsRespected) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, NextBelowCoversRange) {
  SplitMix64 rng(123);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.next_below(7)];
  for (int h : hits) EXPECT_GT(h, 500);  // roughly uniform
}

TEST(Options, TypedAccessorsAndDefaults) {
  Options o;
  o.set_int("nodes", 9);
  o.set_double("bw", 1.5);
  o.set_bool("sync", true);
  o.set("name", "dooc");
  EXPECT_EQ(o.get_int("nodes", 0), 9);
  EXPECT_DOUBLE_EQ(o.get_double("bw", 0.0), 1.5);
  EXPECT_TRUE(o.get_bool("sync", false));
  EXPECT_EQ(o.get("name"), "dooc");
  EXPECT_EQ(o.get_int("missing", 42), 42);
}

TEST(Options, ParsesCommandLineStyleArgs) {
  const char* argv[] = {"prog", "--nodes=4", "--verbose", "--bw=2.5"};
  Options o = Options::from_args(4, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("nodes", 0), 4);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(o.get_double("bw", 0.0), 2.5);
}

TEST(ErrorMacros, RequireThrowsInvalidArgument) {
  EXPECT_THROW(DOOC_REQUIRE(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(DOOC_REQUIRE(true, "fine"));
}

TEST(ErrorMacros, CheckThrowsInternalError) {
  EXPECT_THROW(DOOC_CHECK(false, "bug"), InternalError);
}

}  // namespace
}  // namespace dooc
