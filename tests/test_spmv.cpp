#include <gtest/gtest.h>

#include "spmv/block_grid.hpp"
#include "spmv/csr.hpp"
#include "spmv/generator.hpp"
#include "spmv/kernels.hpp"
#include "test_util.hpp"

namespace dooc::spmv {
namespace {

TEST(Csr, ValidateAcceptsWellFormed) {
  CsrMatrix m = generate_laplacian_1d(10);
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.nnz(), 28u);  // 3n - 2
}

TEST(Csr, ValidateRejectsBadStructure) {
  CsrMatrix m = generate_laplacian_1d(4);
  m.col_idx[1] = 9;  // out of range column
  EXPECT_THROW(m.validate(), InvalidArgument);
}

TEST(Csr, SerializeRoundTrip) {
  CsrMatrix m = generate_uniform_gap(50, 70, 3.0, 42);
  m.validate();
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  EXPECT_EQ(bytes.size(), m.serialized_bytes());

  CsrView v = CsrView::from_bytes(bytes);
  EXPECT_EQ(v.rows(), 50u);
  EXPECT_EQ(v.cols(), 70u);
  EXPECT_EQ(v.nnz(), m.nnz());
  CsrMatrix back = materialize(v);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);
}

TEST(Csr, FromBytesRejectsCorruptHeaders) {
  CsrMatrix m = generate_laplacian_1d(5);
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);

  auto corrupt = bytes;
  corrupt[0] = std::byte{0};
  EXPECT_THROW(CsrView::from_bytes(corrupt), IoError);

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(CsrView::from_bytes(truncated), IoError);

  EXPECT_THROW(CsrView::from_bytes(std::span<const std::byte>{}), IoError);
}

TEST(Csr, ViewMultiplyMatchesOwningMultiply) {
  CsrMatrix m = generate_uniform_gap(40, 40, 2.0, 7);
  std::vector<double> x(40), y1(40), y2(40);
  SplitMix64 rng(3);
  for (auto& v : x) v = rng.next_double();
  m.multiply(x, y1);

  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  CsrView view = CsrView::from_bytes(bytes);
  view.multiply(x, y2);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Csr, MultiplyRowsSplitsCorrectly) {
  CsrMatrix m = generate_uniform_gap(64, 64, 2.0, 11);
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  CsrView view = CsrView::from_bytes(bytes);
  std::vector<double> x(64, 1.0), whole(64), halves(64);
  view.multiply(x, whole);
  view.multiply_rows(x, halves, 0, 32);
  view.multiply_rows(x, halves, 32, 64);
  EXPECT_EQ(whole, halves);
}

TEST(Generator, UniformGapRespectsGapBounds) {
  const double d = 4.0;
  CsrMatrix m = generate_uniform_gap(100, 1000, d, 99);
  m.validate();
  for (std::uint64_t r = 0; r < m.rows; ++r) {
    for (std::uint64_t k = m.row_ptr[r] + 1; k < m.row_ptr[r + 1]; ++k) {
      const std::uint64_t gap = m.col_idx[k] - m.col_idx[k - 1];
      EXPECT_GE(gap, 1u);
      EXPECT_LE(gap, static_cast<std::uint64_t>(2 * d));
    }
  }
}

TEST(Generator, ChooseGapParameterHitsNnzTarget) {
  const std::uint64_t rows = 500, cols = 5000, target = 50000;
  const double d = choose_gap_parameter(rows, cols, target);
  CsrMatrix m = generate_uniform_gap(rows, cols, d, 1234);
  // Expect within 10% of the target.
  EXPECT_NEAR(static_cast<double>(m.nnz()), static_cast<double>(target),
              0.1 * static_cast<double>(target));
}

TEST(Generator, DeterministicInSeed) {
  CsrMatrix a = generate_uniform_gap(20, 20, 2.0, 5);
  CsrMatrix b = generate_uniform_gap(20, 20, 2.0, 5);
  CsrMatrix c = generate_uniform_gap(20, 20, 2.0, 6);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.col_idx, c.col_idx);
}

TEST(Generator, BandedIsSymmetricAndDominant) {
  CsrMatrix m = generate_banded(30, 3, 10.0);
  m.validate();
  // Symmetry: entry (i,j) == (j,i).
  auto at = [&](std::uint64_t i, std::uint64_t j) -> double {
    for (std::uint64_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
      if (m.col_idx[k] == j) return m.values[k];
    }
    return 0.0;
  };
  for (std::uint64_t i = 0; i < 30; ++i) {
    double off = 0;
    for (std::uint64_t j = 0; j < 30; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(at(i, j), at(j, i));
        off += std::abs(at(i, j));
      }
    }
    EXPECT_GT(at(i, i), off) << "not diagonally dominant at row " << i;
  }
}

TEST(Generator, ExtractBlockPreservesEntries) {
  CsrMatrix m = generate_uniform_gap(60, 60, 2.0, 77);
  CsrMatrix blk = extract_block(m, 20, 20, 30, 20);
  blk.validate();
  // Every block entry matches the global one.
  for (std::uint64_t r = 0; r < 20; ++r) {
    for (std::uint64_t k = blk.row_ptr[r]; k < blk.row_ptr[r + 1]; ++k) {
      const std::uint64_t gc = blk.col_idx[k] + 30;
      bool found = false;
      for (std::uint64_t gk = m.row_ptr[20 + r]; gk < m.row_ptr[21 + r]; ++gk) {
        if (m.col_idx[gk] == gc) {
          EXPECT_DOUBLE_EQ(m.values[gk], blk.values[k]);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Kernels, VectorOps) {
  std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3, 4}), 5.0);
  axpy(2.0, a, b);
  EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
  scale(b, 0.5);
  EXPECT_EQ(b, (std::vector<double>{3, 4.5, 6}));
  std::vector<double> c(3);
  copy(a, c);
  EXPECT_EQ(c, a);
}

TEST(Kernels, SumVectorsReduces) {
  std::vector<double> p1{1, 2}, p2{10, 20}, p3{100, 200};
  std::vector<std::span<const double>> parts{p1, p2, p3};
  std::vector<double> out(2);
  sum_vectors(parts, out);
  EXPECT_EQ(out, (std::vector<double>{111, 222}));
}

TEST(Kernels, ParallelMultiplyMatchesSerial) {
  CsrMatrix m = generate_uniform_gap(2000, 2000, 3.0, 13);
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  CsrView view = CsrView::from_bytes(bytes);
  std::vector<double> x(2000), ys(2000), yp(2000);
  SplitMix64 rng(17);
  for (auto& v : x) v = rng.next_double() - 0.5;
  view.multiply(x, ys);
  ThreadPool pool(4);
  multiply_parallel(view, x, yp, pool);
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_DOUBLE_EQ(ys[i], yp[i]);
}

TEST(BlockGrid, PartitionIsEvenAndExhaustive) {
  BlockGrid grid(103, 4);
  std::uint64_t total = 0;
  for (int p = 0; p < 4; ++p) {
    total += grid.part_size(p);
    EXPECT_GE(grid.part_size(p), 103u / 4);
    EXPECT_LE(grid.part_size(p), 103u / 4 + 1);
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(grid.part_begin(0), 0u);
  EXPECT_EQ(grid.part_begin(4), 103u);
}

TEST(BlockGrid, OwnersCoverConfigurations) {
  auto col = column_strip_owner(3);
  EXPECT_EQ(col(0, 2), 2);
  EXPECT_EQ(col(5, 2), 2);
  auto row = row_strip_owner(3);
  EXPECT_EQ(row(2, 0), 2);
  auto tile = square_tile_owner(4, 10);  // 2x2 nodes, 5x5 blocks each
  EXPECT_EQ(tile(0, 0), 0);
  EXPECT_EQ(tile(0, 5), 1);
  EXPECT_EQ(tile(5, 0), 2);
  EXPECT_EQ(tile(9, 9), 3);
  EXPECT_THROW(square_tile_owner(3, 9), InvalidArgument);
  EXPECT_THROW(square_tile_owner(4, 9), InvalidArgument);
}

TEST(BlockGrid, DeployAndGatherRoundTrip) {
  testutil::TempDir dir("deploy");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 64ull << 20;
  storage::StorageCluster cluster(2, cfg);

  CsrMatrix m = generate_uniform_gap(64, 64, 2.0, 21);
  const auto deployed = deploy_matrix(cluster, m, 4, column_strip_owner(2));
  EXPECT_EQ(deployed.grid.k(), 4);
  EXPECT_EQ(deployed.total_nnz(), m.nnz());

  // Every sub-matrix array exists and parses.
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      const auto name = deployed.name_of(u, v);
      auto meta = cluster.node(0).array_meta(name);
      ASSERT_TRUE(meta.has_value()) << name;
      EXPECT_EQ(meta->home_node, v % 2);
      auto handle = cluster.node(0).request_read({name, 0, meta->size}).get();
      CsrView view = CsrView::from_bytes(handle.bytes());
      EXPECT_EQ(view.rows(), deployed.grid.part_size(u));
      EXPECT_EQ(view.cols(), deployed.grid.part_size(v));
    }
  }

  create_distributed_vector(cluster, deployed.grid, column_strip_owner(2), "x", 0,
                            [](std::uint64_t i) { return static_cast<double>(i); });
  const auto gathered = gather_vector(cluster, deployed.grid, "x", 0);
  ASSERT_EQ(gathered.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(gathered[i], static_cast<double>(i));
}

}  // namespace
}  // namespace dooc::spmv
