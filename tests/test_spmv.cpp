#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "spmv/block_grid.hpp"
#include "spmv/csr.hpp"
#include "spmv/generator.hpp"
#include "spmv/kernels.hpp"
#include "spmv/partition.hpp"
#include "spmv/sell.hpp"
#include "test_util.hpp"

namespace dooc::spmv {
namespace {

TEST(Csr, ValidateAcceptsWellFormed) {
  CsrMatrix m = generate_laplacian_1d(10);
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.nnz(), 28u);  // 3n - 2
}

TEST(Csr, ValidateRejectsBadStructure) {
  CsrMatrix m = generate_laplacian_1d(4);
  m.col_idx[1] = 9;  // out of range column
  EXPECT_THROW(m.validate(), InvalidArgument);
}

TEST(Csr, SerializeRoundTrip) {
  CsrMatrix m = generate_uniform_gap(50, 70, 3.0, 42);
  m.validate();
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  EXPECT_EQ(bytes.size(), m.serialized_bytes());

  CsrView v = CsrView::from_bytes(bytes);
  EXPECT_EQ(v.rows(), 50u);
  EXPECT_EQ(v.cols(), 70u);
  EXPECT_EQ(v.nnz(), m.nnz());
  CsrMatrix back = materialize(v);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.values, m.values);
}

TEST(Csr, FromBytesRejectsCorruptHeaders) {
  CsrMatrix m = generate_laplacian_1d(5);
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);

  auto corrupt = bytes;
  corrupt[0] = std::byte{0};
  EXPECT_THROW(CsrView::from_bytes(corrupt), IoError);

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(CsrView::from_bytes(truncated), IoError);

  EXPECT_THROW(CsrView::from_bytes(std::span<const std::byte>{}), IoError);
}

TEST(Csr, ViewMultiplyMatchesOwningMultiply) {
  CsrMatrix m = generate_uniform_gap(40, 40, 2.0, 7);
  std::vector<double> x(40), y1(40), y2(40);
  SplitMix64 rng(3);
  for (auto& v : x) v = rng.next_double();
  m.multiply(x, y1);

  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  CsrView view = CsrView::from_bytes(bytes);
  view.multiply(x, y2);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Csr, MultiplyRowsSplitsCorrectly) {
  CsrMatrix m = generate_uniform_gap(64, 64, 2.0, 11);
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  CsrView view = CsrView::from_bytes(bytes);
  std::vector<double> x(64, 1.0), whole(64), halves(64);
  view.multiply(x, whole);
  view.multiply_rows(x, halves, 0, 32);
  view.multiply_rows(x, halves, 32, 64);
  EXPECT_EQ(whole, halves);
}

TEST(Generator, UniformGapRespectsGapBounds) {
  const double d = 4.0;
  CsrMatrix m = generate_uniform_gap(100, 1000, d, 99);
  m.validate();
  for (std::uint64_t r = 0; r < m.rows; ++r) {
    for (std::uint64_t k = m.row_ptr[r] + 1; k < m.row_ptr[r + 1]; ++k) {
      const std::uint64_t gap = m.col_idx[k] - m.col_idx[k - 1];
      EXPECT_GE(gap, 1u);
      EXPECT_LE(gap, static_cast<std::uint64_t>(2 * d));
    }
  }
}

TEST(Generator, ChooseGapParameterHitsNnzTarget) {
  const std::uint64_t rows = 500, cols = 5000, target = 50000;
  const double d = choose_gap_parameter(rows, cols, target);
  CsrMatrix m = generate_uniform_gap(rows, cols, d, 1234);
  // Expect within 10% of the target.
  EXPECT_NEAR(static_cast<double>(m.nnz()), static_cast<double>(target),
              0.1 * static_cast<double>(target));
}

TEST(Generator, DeterministicInSeed) {
  CsrMatrix a = generate_uniform_gap(20, 20, 2.0, 5);
  CsrMatrix b = generate_uniform_gap(20, 20, 2.0, 5);
  CsrMatrix c = generate_uniform_gap(20, 20, 2.0, 6);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.col_idx, c.col_idx);
}

TEST(Generator, BandedIsSymmetricAndDominant) {
  CsrMatrix m = generate_banded(30, 3, 10.0);
  m.validate();
  // Symmetry: entry (i,j) == (j,i).
  auto at = [&](std::uint64_t i, std::uint64_t j) -> double {
    for (std::uint64_t k = m.row_ptr[i]; k < m.row_ptr[i + 1]; ++k) {
      if (m.col_idx[k] == j) return m.values[k];
    }
    return 0.0;
  };
  for (std::uint64_t i = 0; i < 30; ++i) {
    double off = 0;
    for (std::uint64_t j = 0; j < 30; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(at(i, j), at(j, i));
        off += std::abs(at(i, j));
      }
    }
    EXPECT_GT(at(i, i), off) << "not diagonally dominant at row " << i;
  }
}

TEST(Generator, ExtractBlockPreservesEntries) {
  CsrMatrix m = generate_uniform_gap(60, 60, 2.0, 77);
  CsrMatrix blk = extract_block(m, 20, 20, 30, 20);
  blk.validate();
  // Every block entry matches the global one.
  for (std::uint64_t r = 0; r < 20; ++r) {
    for (std::uint64_t k = blk.row_ptr[r]; k < blk.row_ptr[r + 1]; ++k) {
      const std::uint64_t gc = blk.col_idx[k] + 30;
      bool found = false;
      for (std::uint64_t gk = m.row_ptr[20 + r]; gk < m.row_ptr[21 + r]; ++gk) {
        if (m.col_idx[gk] == gc) {
          EXPECT_DOUBLE_EQ(m.values[gk], blk.values[k]);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Kernels, VectorOps) {
  std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3, 4}), 5.0);
  axpy(2.0, a, b);
  EXPECT_EQ(b, (std::vector<double>{6, 9, 12}));
  scale(b, 0.5);
  EXPECT_EQ(b, (std::vector<double>{3, 4.5, 6}));
  std::vector<double> c(3);
  copy(a, c);
  EXPECT_EQ(c, a);
}

TEST(Kernels, SumVectorsReduces) {
  std::vector<double> p1{1, 2}, p2{10, 20}, p3{100, 200};
  std::vector<std::span<const double>> parts{p1, p2, p3};
  std::vector<double> out(2);
  sum_vectors(parts, out);
  EXPECT_EQ(out, (std::vector<double>{111, 222}));
}

TEST(Kernels, ParallelMultiplyMatchesSerial) {
  CsrMatrix m = generate_uniform_gap(2000, 2000, 3.0, 13);
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  CsrView view = CsrView::from_bytes(bytes);
  std::vector<double> x(2000), ys(2000), yp(2000);
  SplitMix64 rng(17);
  for (auto& v : x) v = rng.next_double() - 0.5;
  view.multiply(x, ys);
  ThreadPool pool(4);
  multiply_parallel(view, x, yp, pool);
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_DOUBLE_EQ(ys[i], yp[i]);
}

TEST(BlockGrid, PartitionIsEvenAndExhaustive) {
  BlockGrid grid(103, 4);
  std::uint64_t total = 0;
  for (int p = 0; p < 4; ++p) {
    total += grid.part_size(p);
    EXPECT_GE(grid.part_size(p), 103u / 4);
    EXPECT_LE(grid.part_size(p), 103u / 4 + 1);
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(grid.part_begin(0), 0u);
  EXPECT_EQ(grid.part_begin(4), 103u);
}

TEST(BlockGrid, OwnersCoverConfigurations) {
  auto col = column_strip_owner(3);
  EXPECT_EQ(col(0, 2), 2);
  EXPECT_EQ(col(5, 2), 2);
  auto row = row_strip_owner(3);
  EXPECT_EQ(row(2, 0), 2);
  auto tile = square_tile_owner(4, 10);  // 2x2 nodes, 5x5 blocks each
  EXPECT_EQ(tile(0, 0), 0);
  EXPECT_EQ(tile(0, 5), 1);
  EXPECT_EQ(tile(5, 0), 2);
  EXPECT_EQ(tile(9, 9), 3);
  EXPECT_THROW(square_tile_owner(3, 9), InvalidArgument);
  EXPECT_THROW(square_tile_owner(4, 9), InvalidArgument);
}

TEST(BlockGrid, DeployAndGatherRoundTrip) {
  testutil::TempDir dir("deploy");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 64ull << 20;
  storage::StorageCluster cluster(2, cfg);

  CsrMatrix m = generate_uniform_gap(64, 64, 2.0, 21);
  const auto deployed = deploy_matrix(cluster, m, 4, column_strip_owner(2));
  EXPECT_EQ(deployed.grid.k(), 4);
  EXPECT_EQ(deployed.total_nnz(), m.nnz());

  // Every sub-matrix array exists and parses.
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      const auto name = deployed.name_of(u, v);
      auto meta = cluster.node(0).array_meta(name);
      ASSERT_TRUE(meta.has_value()) << name;
      EXPECT_EQ(meta->home_node, v % 2);
      auto handle = cluster.node(0).request_read({name, 0, meta->size}).get();
      CsrView view = CsrView::from_bytes(handle.bytes());
      EXPECT_EQ(view.rows(), deployed.grid.part_size(u));
      EXPECT_EQ(view.cols(), deployed.grid.part_size(v));
    }
  }

  create_distributed_vector(cluster, deployed.grid, column_strip_owner(2), "x", 0,
                            [](std::uint64_t i) { return static_cast<double>(i); });
  const auto gathered = gather_vector(cluster, deployed.grid, "x", 0);
  ASSERT_EQ(gathered.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(gathered[i], static_cast<double>(i));
}

// ---------------------------------------------------------------------------
// Row partitioning
// ---------------------------------------------------------------------------

void expect_covering(const std::vector<RowRange>& ranges, std::uint64_t rows) {
  std::uint64_t next = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, next);
    EXPECT_LE(r.begin, r.end);
    next = r.end;
  }
  EXPECT_EQ(next, rows);
}

TEST(Partition, EqualRowRangesCoverAllRows) {
  expect_covering(equal_row_ranges(103, 4), 103);
  expect_covering(equal_row_ranges(3, 8), 3);  // more parts than rows
  expect_covering(equal_row_ranges(0, 4), 0);
  EXPECT_LE(equal_row_ranges(103, 4).size(), 4u);
}

TEST(Partition, BalancedRangesCoverAndBalanceSkew) {
  // First 10 rows carry 100 nnz each, the remaining 90 carry none: the
  // equal split serializes on part 0, the balanced split spreads the work.
  std::vector<std::uint64_t> row_ptr(101, 1000);
  for (std::uint64_t r = 0; r <= 10; ++r) row_ptr[r] = r * 100;
  const auto equal = equal_row_ranges(100, 4);
  const auto balanced = balanced_row_ranges(row_ptr, 4);
  expect_covering(balanced, 100);
  const double eq_imb = partition_imbalance(row_ptr, equal);
  const double bal_imb = partition_imbalance(row_ptr, balanced);
  EXPECT_NEAR(eq_imb, 4.0, 1e-12);   // all nnz in part 0
  EXPECT_NEAR(bal_imb, 1.2, 0.21);   // rows are 100-nnz grains of a 250 target
  EXPECT_LT(bal_imb, eq_imb);
}

TEST(Partition, FatRowGetsItsOwnChunk) {
  // One row holds 1000 of 1004 nnz; the balanced split must isolate it.
  std::vector<std::uint64_t> row_ptr{0, 1, 2, 1002, 1003, 1004};
  const auto ranges = balanced_row_ranges(row_ptr, 4);
  expect_covering(ranges, 5);
  bool fat_alone = false;
  for (const auto& r : ranges) {
    if (r.begin <= 2 && 3 <= r.end) fat_alone = (r.size() == 1);
  }
  EXPECT_TRUE(fat_alone) << "row 2 should be a singleton chunk";
}

TEST(Partition, DegenerateInputs) {
  const std::vector<std::uint64_t> empty_ptr{0};
  expect_covering(balanced_row_ranges(empty_ptr, 4), 0);
  EXPECT_DOUBLE_EQ(partition_imbalance(empty_ptr, balanced_row_ranges(empty_ptr, 4)), 1.0);
  // All-empty rows: no nnz to balance, but coverage must hold.
  const std::vector<std::uint64_t> zeros(9, 0);
  expect_covering(balanced_row_ranges(zeros, 3), 8);
}

// ---------------------------------------------------------------------------
// SELL-C-σ
// ---------------------------------------------------------------------------

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> x(n);
  SplitMix64 rng(seed);
  for (auto& v : x) v = rng.next_double() - 0.5;
  return x;
}

TEST(Sell, BuildMatchesCsrAcrossChunkAndSigma) {
  const CsrMatrix m = generate_power_law(150, 130, 6.0, 1.6, 0xBEEF);
  const auto x = random_vector(130, 1);
  std::vector<double> y_ref(150);
  m.multiply(x, y_ref);
  for (std::uint32_t c : {1u, 4u, 8u}) {
    for (std::uint32_t sigma : {1u, 16u, 150u}) {
      const SellMatrix s = build_sell(m, c, sigma);
      EXPECT_EQ(s.nnz, m.nnz());
      EXPECT_GE(s.fill_ratio(), 1.0);
      std::vector<double> y(150);
      s.multiply(x, y);
      for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_DOUBLE_EQ(y_ref[i], y[i]) << "C=" << c << " sigma=" << sigma << " row " << i;
    }
  }
}

TEST(Sell, SigmaSortingReducesPadding) {
  // Skewed rows: global sorting groups like-length rows, shrinking chunks.
  const CsrMatrix m = generate_power_law(512, 512, 8.0, 1.5, 0xD00C);
  const SellMatrix unsorted = build_sell(m, 8, 1);
  const SellMatrix sorted = build_sell(m, 8, 512);
  EXPECT_LE(sorted.fill_ratio(), unsorted.fill_ratio());
}

TEST(Sell, SerializeRoundTrip) {
  const CsrMatrix m = generate_uniform_gap(90, 75, 3.0, 0xF00D);
  const SellMatrix s = build_sell(m, 8, 32);
  std::vector<std::byte> bytes;
  serialize_sell(s, bytes);
  EXPECT_EQ(bytes.size(), s.serialized_bytes());

  const SellView view = SellView::from_bytes(bytes);
  EXPECT_EQ(view.rows(), s.rows);
  EXPECT_EQ(view.cols(), s.cols);
  EXPECT_EQ(view.nnz(), s.nnz);
  EXPECT_EQ(view.chunk(), s.chunk);
  EXPECT_EQ(view.sigma(), s.sigma);
  const SellMatrix back = materialize(view);
  EXPECT_EQ(back.chunk_ptr, s.chunk_ptr);
  EXPECT_EQ(back.perm, s.perm);
  EXPECT_EQ(back.col_idx, s.col_idx);
  EXPECT_EQ(back.values, s.values);

  const auto x = random_vector(75, 2);
  std::vector<double> y1(90), y2(90);
  s.multiply(x, y1);
  view.multiply(x, y2);
  EXPECT_EQ(y1, y2);
}

TEST(Sell, FromBytesRejectsMalformed) {
  const CsrMatrix m = generate_laplacian_1d(20);
  std::vector<std::byte> bytes;
  serialize_sell(build_sell(m, 4, 8), bytes);

  auto corrupt = bytes;
  corrupt[0] = std::byte{0};
  EXPECT_THROW(SellView::from_bytes(corrupt), IoError);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 9);
  EXPECT_THROW(SellView::from_bytes(truncated), IoError);

  EXPECT_THROW(SellView::from_bytes(std::span<const std::byte>{}), IoError);

  // Adversarial header: padded_nnz near 2^64 must fail cleanly in the size
  // check, not wrap around and read out of bounds.
  std::uint64_t header[8] = {kSellMagic,
                             0x0102030405060708ull,
                             4,
                             4,
                             4,
                             8,
                             8,
                             std::numeric_limits<std::uint64_t>::max() / 2};
  std::vector<std::byte> evil(sizeof header);
  std::memcpy(evil.data(), header, sizeof header);
  EXPECT_THROW(SellView::from_bytes(evil), IoError);
}

TEST(Sell, SniffBlockFormatDispatches) {
  const CsrMatrix m = generate_laplacian_1d(10);
  std::vector<std::byte> csr_bytes, sell_bytes;
  serialize_csr(m, csr_bytes);
  serialize_sell(build_sell(m, 4, 4), sell_bytes);
  EXPECT_EQ(sniff_block_format(csr_bytes), BlockFormat::Csr);
  EXPECT_EQ(sniff_block_format(sell_bytes), BlockFormat::Sell);
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_THROW((void)sniff_block_format(junk), IoError);
  EXPECT_THROW((void)sniff_block_format(std::span<const std::byte>{}), IoError);
}

TEST(Csr, FromBytesRejectsOverflowingHeader) {
  // Headers whose implied byte count wraps 64-bit arithmetic used to pass
  // the size check with a tiny `need`; they must throw IoError instead.
  const std::uint64_t evil_sizes[][2] = {
      {std::numeric_limits<std::uint64_t>::max(), 4},           // rows+1 wraps
      {4, std::numeric_limits<std::uint64_t>::max() / 4},       // nnz*8 wraps
      {std::numeric_limits<std::uint64_t>::max() / 8, 4},       // (rows+1)*8 wraps
  };
  for (const auto& [rows, nnz] : evil_sizes) {
    std::uint64_t header[5] = {0x44435253'42494E31ull, 0x0102030405060708ull, rows, 4, nnz};
    std::vector<std::byte> evil(sizeof header);
    std::memcpy(evil.data(), header, sizeof header);
    EXPECT_THROW(CsrView::from_bytes(evil), IoError) << "rows=" << rows << " nnz=" << nnz;
  }
}

// ---------------------------------------------------------------------------
// Kernel property sweep: every parallel/format variant against serial CSR
// ---------------------------------------------------------------------------

/// Edge shapes the sweep always includes alongside the random matrices.
std::vector<CsrMatrix> edge_matrices() {
  std::vector<CsrMatrix> out;
  // Empty 16x16 (rows exist, no entries).
  CsrMatrix zero;
  zero.rows = zero.cols = 16;
  zero.row_ptr.assign(17, 0);
  out.push_back(zero);
  // Single dense row among empty ones.
  CsrMatrix fat;
  fat.rows = fat.cols = 32;
  fat.row_ptr.assign(33, 0);
  for (std::uint32_t c = 0; c < 32; ++c) {
    fat.col_idx.push_back(c);
    fat.values.push_back(1.0 / (1.0 + c));
  }
  for (std::uint64_t r = 8; r <= 32; ++r) fat.row_ptr[r] = 32;
  out.push_back(fat);
  // 1x1 with and without an entry.
  CsrMatrix one;
  one.rows = one.cols = 1;
  one.row_ptr = {0, 1};
  one.col_idx = {0};
  one.values = {2.5};
  out.push_back(one);
  CsrMatrix one_empty;
  one_empty.rows = one_empty.cols = 1;
  one_empty.row_ptr = {0, 0};
  out.push_back(one_empty);
  return out;
}

TEST(KernelsParallel, PropertySweepMatchesSerialCsr) {
  std::vector<CsrMatrix> cases = edge_matrices();
  cases.push_back(generate_uniform_gap(257, 257, 2.5, 0x11));
  cases.push_back(generate_power_law(300, 300, 8.0, 1.5, 0x22));
  ThreadPool pool(4);
  KernelConfig eager;  // force the parallel path even for tiny matrices
  eager.serial_nnz_threshold = 0;

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const CsrMatrix& m = cases[ci];
    m.validate();
    const auto x = random_vector(m.cols, 0x1000 + ci);
    std::vector<double> y_ref(m.rows);
    m.multiply(x, y_ref);

    std::vector<std::byte> csr_bytes;
    serialize_csr(m, csr_bytes);
    const CsrView view = CsrView::from_bytes(csr_bytes);

    for (BalanceMode mode : {BalanceMode::EqualRows, BalanceMode::BalancedNnz}) {
      KernelConfig cfg = eager;
      cfg.balance = mode;
      std::vector<double> y(m.rows, -1.0);
      multiply_parallel(view, x, y, pool, cfg);
      for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_DOUBLE_EQ(y_ref[i], y[i]) << "case " << ci << " mode "
                                         << (mode == BalanceMode::EqualRows ? "equal" : "nnz");
    }

    std::vector<std::byte> sell_bytes;
    serialize_sell(build_sell(m, 8, 64), sell_bytes);
    const SellView sell = SellView::from_bytes(sell_bytes);
    std::vector<double> y_sell(m.rows, -1.0);
    multiply_parallel(sell, x, y_sell, pool, eager);
    for (std::size_t i = 0; i < y_sell.size(); ++i)
      EXPECT_DOUBLE_EQ(y_ref[i], y_sell[i]) << "SELL case " << ci;

    // The byte-level dispatcher the task bodies use, on both formats.
    for (const auto* bytes : {&csr_bytes, &sell_bytes}) {
      std::vector<double> y_any(m.rows, -1.0);
      multiply_any(*bytes, x, y_any, pool, eager);
      for (std::size_t i = 0; i < y_any.size(); ++i)
        EXPECT_DOUBLE_EQ(y_ref[i], y_any[i]) << "multiply_any case " << ci;
    }
  }
}

TEST(KernelsParallel, SymmetricHalfMatchesSerialReference) {
  const CsrMatrix sym = symmetrize(generate_uniform_gap(200, 200, 3.0, 0x33));
  const CsrMatrix lower = extract_lower_triangle(sym);
  std::vector<std::byte> bytes;
  serialize_csr(lower, bytes);
  const CsrView view = CsrView::from_bytes(bytes);

  const auto x = random_vector(200, 4);
  std::vector<double> y_full(200), y_half(200), y_par(200);
  sym.multiply(x, y_full);
  multiply_symmetric_half(view, x, y_half);

  ThreadPool pool(4);
  KernelConfig cfg;
  cfg.serial_nnz_threshold = 0;
  for (BalanceMode mode : {BalanceMode::EqualRows, BalanceMode::BalancedNnz}) {
    cfg.balance = mode;
    std::fill(y_par.begin(), y_par.end(), -1.0);
    multiply_symmetric_half_parallel(view, x, y_par, pool, cfg);
    // Parallel partials reassociate the scatter sums: tolerance, not bitwise.
    for (std::size_t i = 0; i < y_par.size(); ++i) {
      EXPECT_NEAR(y_half[i], y_par[i], 1e-12 * (1.0 + std::abs(y_half[i])));
      EXPECT_NEAR(y_full[i], y_par[i], 1e-12 * (1.0 + std::abs(y_full[i])));
    }
  }
}

TEST(KernelsBlas1, PoolVariantsMatchSerial) {
  // Above kBlas1ParallelThreshold so the pool path actually splits.
  const std::size_t n = kBlas1ParallelThreshold + 1234;
  const auto a = random_vector(n, 5);
  const auto b = random_vector(n, 6);
  ThreadPool pool(4);

  const double d_serial = dot(a, b);
  const double d_pool = dot(a, b, pool);
  EXPECT_NEAR(d_serial, d_pool, 1e-10 * (1.0 + std::abs(d_serial)));

  const double n_serial = norm2(a);
  const double n_pool = norm2(a, pool);
  EXPECT_NEAR(n_serial, n_pool, 1e-10 * (1.0 + n_serial));

  auto y_serial = b;
  auto y_pool = b;
  axpy(2.5, a, y_serial);
  axpy(2.5, a, y_pool, pool);
  EXPECT_EQ(y_serial, y_pool);  // element-wise: no reassociation at all

  std::vector<std::span<const double>> parts{a, b};
  std::vector<double> s_serial(n), s_pool(n);
  sum_vectors(parts, s_serial);
  sum_vectors(parts, s_pool, pool);
  EXPECT_EQ(s_serial, s_pool);
}

TEST(KernelsParallel, SerialGateIsOnNnzNotRows) {
  // Many rows but almost no work: with the default config this must take
  // the serial path (and still be correct); with threshold 0 the parallel
  // path must agree bitwise.
  CsrMatrix m;
  m.rows = m.cols = 5000;
  m.row_ptr.assign(5001, 0);
  m.col_idx = {7};
  m.values = {3.0};
  for (std::uint64_t r = 1; r <= 5000; ++r) m.row_ptr[r] = 1;
  std::vector<std::byte> bytes;
  serialize_csr(m, bytes);
  const CsrView view = CsrView::from_bytes(bytes);
  const auto x = random_vector(5000, 7);
  std::vector<double> y_ref(5000), y_default(5000), y_eager(5000);
  m.multiply(x, y_ref);
  ThreadPool pool(4);
  multiply_parallel(view, x, y_default, pool);
  KernelConfig eager;
  eager.serial_nnz_threshold = 0;
  multiply_parallel(view, x, y_eager, pool, eager);
  EXPECT_EQ(y_ref, y_default);
  EXPECT_EQ(y_ref, y_eager);
}

}  // namespace
}  // namespace dooc::spmv
