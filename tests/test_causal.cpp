// Tests for dooc::obs::causal — correlation ids, the causal DAG rebuilt
// from flow events (hand-built traces with known critical paths, blame and
// what-if retiming), the flow emission of the real engine and the DES
// (same id scheme under real and virtual time), and the trace-completeness
// metadata record.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/engine.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/array_creator.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

using obs::ParsedEvent;
using namespace obs::causal;

ParsedEvent span(const char* cat, const char* name, double ts, double dur, int pid, int tid,
                 std::int64_t task = -1) {
  ParsedEvent ev;
  ev.phase = 'X';
  ev.cat = cat;
  ev.name = name;
  ev.ts_us = ts;
  ev.dur_us = dur;
  ev.pid = pid;
  ev.tid = tid;
  if (task >= 0) ev.args["task"] = static_cast<double>(task);
  return ev;
}

ParsedEvent flow(char phase, std::uint64_t id, double ts, int pid, int tid,
                 std::int64_t task = -1) {
  ParsedEvent ev;
  ev.phase = phase;
  ev.cat = "dep";
  ev.name = "flow";
  ev.ts_us = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.flow_id = id;
  if (task >= 0) ev.args["task"] = static_cast<double>(task);
  return ev;
}

// ---- correlation ids -------------------------------------------------------

TEST(FlowIds, NamespacesAreDisjointAndIdsDeterministic) {
  const std::uint64_t dep = flow_id_dep("x_0^1");
  const std::uint64_t load = flow_id_load("A_0_0", 0);
  EXPECT_EQ(dep & kFlowNamespaceMask, kFlowDep);
  EXPECT_EQ(load & kFlowNamespaceMask, kFlowLoad);
  // Pure functions: the engine and the DES compute identical ids.
  EXPECT_EQ(dep, flow_id_dep("x_0^1"));
  EXPECT_EQ(load, flow_id_load("A_0_0", 0));
  // Distinct names and distinct offsets separate.
  EXPECT_NE(flow_id_dep("x_0^1"), flow_id_dep("x_1^1"));
  EXPECT_NE(flow_id_load("A_0_0", 0), flow_id_load("A_0_0", 4096));
  EXPECT_NE(flow_id_dep("A_0_0"), flow_id_load("A_0_0", 0));
}

// ---- hand-built graph: known path, blame, what-if --------------------------

// Scenario (all on pid 0): a 100 µs block load feeds task 1 (50 µs compute
// on lane 0), whose output feeds task 2 (40 µs on lane 1) after a 10 µs
// scheduling gap. Makespan 200 µs, every segment known in closed form.
std::vector<ParsedEvent> chain_trace() {
  const std::uint64_t load = flow_id_load("A", 0);
  const std::uint64_t dep = flow_id_dep("x");
  std::vector<ParsedEvent> events;
  events.push_back(flow('s', load, 0.0, 0, 100));
  events.push_back(flow('t', load, 100.0, 0, 100));
  events.push_back(flow('f', load, 100.0, 0, 0, /*task=*/1));
  events.push_back(span("task", "t1", 100.0, 50.0, 0, 0, /*task=*/1));
  events.push_back(flow('s', dep, 150.0, 0, 0, /*task=*/1));
  events.push_back(flow('f', dep, 160.0, 0, 1, /*task=*/2));
  events.push_back(span("task", "t2", 160.0, 40.0, 0, 1, /*task=*/2));
  return events;
}

TEST(CausalGraph, CriticalPathOfKnownChain) {
  const CausalGraph g = CausalGraph::build(chain_trace());
  ASSERT_EQ(g.nodes().size(), 3u);  // t1, t2, load
  EXPECT_DOUBLE_EQ(g.makespan_us(), 200.0);

  const auto path = g.critical_path();
  ASSERT_EQ(path.size(), 4u);
  // Source→sink: the un-shadowed load, t1's compute, the 10 µs gap charged
  // to the scheduler, t2's compute.
  EXPECT_EQ(path[0].category, kBlameDemandIo);
  EXPECT_DOUBLE_EQ(path[0].us, 100.0);
  EXPECT_EQ(path[1].category, kBlameCompute);
  EXPECT_DOUBLE_EQ(path[1].us, 50.0);
  EXPECT_EQ(path[2].category, kBlameSchedWait);
  EXPECT_DOUBLE_EQ(path[2].us, 10.0);
  EXPECT_EQ(path[3].category, kBlameCompute);
  EXPECT_DOUBLE_EQ(path[3].us, 40.0);
}

TEST(CausalGraph, BlameSumsThePathAndTilesTheMakespan) {
  const CausalGraph g = CausalGraph::build(chain_trace());
  const Blame b = g.blame();
  EXPECT_DOUBLE_EQ(b.get(kBlameDemandIo), 100.0);
  EXPECT_DOUBLE_EQ(b.get(kBlameCompute), 90.0);
  EXPECT_DOUBLE_EQ(b.get(kBlameSchedWait), 10.0);
  EXPECT_DOUBLE_EQ(b.total_us(), g.makespan_us());
}

TEST(CausalGraph, WhatIfRetimesTheDag) {
  const CausalGraph g = CausalGraph::build(chain_trace());
  // Free storage: the load vanishes, t1 runs [0,50), t2 right after
  // (retiming drops the measured scheduling gap too — it was slack).
  EXPECT_DOUBLE_EQ(g.what_if("io", 0.0), 90.0);
  EXPECT_DOUBLE_EQ(g.speedup_if("io", 0.0), 200.0 / 90.0);
  // Twice-as-fast compute: 100 + 25 + 20.
  EXPECT_DOUBLE_EQ(g.what_if("compute", 0.5), 145.0);
  // Factor 1 on anything reproduces the DAG's own span (sans slack).
  EXPECT_DOUBLE_EQ(g.what_if("stream", 1.0), 190.0);
  // Monotonicity guarantee: factor <= 1 never exceeds the measured makespan.
  EXPECT_LE(g.what_if("io", 0.0), g.makespan_us());
}

TEST(CausalGraph, LoadOverlappedByComputeIsPrefetchShadowed) {
  // Same chain, but the load's delivery slides to 130 µs — its tail overlaps
  // t1's compute [100,150): 30 µs shadowed... except t1 *consumed* it at
  // 100. Build a variant where a second load [100,130) feeds t2 instead.
  std::vector<ParsedEvent> events = chain_trace();
  const std::uint64_t load2 = flow_id_load("B", 0);
  events.push_back(flow('s', load2, 100.0, 0, 101));
  events.push_back(flow('t', load2, 130.0, 0, 101));
  events.push_back(flow('f', load2, 130.0, 0, 1, /*task=*/2));
  const CausalGraph g = CausalGraph::build(events);
  const auto path = g.critical_path();
  double prefetch = 0.0;
  for (const auto& seg : path) {
    if (seg.category == kBlamePrefetchIo) prefetch += seg.us;
  }
  // The critical route to t2 still runs through t1 (ends 150 > 130), so the
  // shadowed load is NOT on the path; total blame still tiles the makespan.
  EXPECT_DOUBLE_EQ(prefetch, 0.0);
  EXPECT_DOUBLE_EQ(g.blame().total_us(), g.makespan_us());
}

TEST(CausalGraph, ReReadAfterEvictionSplitsInstances) {
  const std::uint64_t load = flow_id_load("A", 0);
  std::vector<ParsedEvent> events;
  events.push_back(flow('s', load, 0.0, 0, 100));
  events.push_back(flow('t', load, 10.0, 0, 100));
  events.push_back(flow('s', load, 50.0, 0, 100));  // evicted, re-read
  events.push_back(flow('t', load, 65.0, 0, 100));
  events.push_back(flow('f', load, 65.0, 0, 0, /*task=*/7));
  events.push_back(span("task", "t7", 65.0, 5.0, 0, 0, /*task=*/7));
  const CausalGraph g = CausalGraph::build(events);
  int loads = 0;
  for (const auto& n : g.nodes()) {
    if (n.kind == NodeKind::Load) ++loads;
  }
  EXPECT_EQ(loads, 2);
  // The consumer binds to the second instance (the one its 'f' fell into).
  const auto path = g.critical_path();
  ASSERT_FALSE(path.empty());
  double demand = 0.0;
  for (const auto& seg : path) {
    if (seg.category == kBlameDemandIo) demand += seg.us;
  }
  EXPECT_DOUBLE_EQ(demand, 15.0);
}

TEST(CausalGraph, OrphanFlowPointsAndEmptyTracesAreHarmless) {
  std::vector<ParsedEvent> events;
  events.push_back(flow('t', flow_id_load("A", 0), 5.0, 0, 100));  // no 's'
  events.push_back(flow('f', flow_id_dep("x"), 6.0, 0, 0, 3));     // no 's'
  const CausalGraph g = CausalGraph::build(events);
  EXPECT_TRUE(g.empty());
  EXPECT_TRUE(g.critical_path().empty());
  EXPECT_EQ(g.what_if("io", 0.0), 0.0);
  EXPECT_NE(causal_report(g, true, true, {}).find("no task/flow events"), std::string::npos);
}

// ---- engine and DES emission ----------------------------------------------

/// Tiny but real iterated-SpMV deployment shared by the emission tests.
struct RealRun {
  std::set<std::uint64_t> dep_starts;
  std::set<std::uint64_t> load_starts;
  std::vector<ParsedEvent> parsed;
};

RealRun run_real_engine(const testutil::TempDir& dir) {
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 4ull << 20;
  storage::StorageCluster cluster(2, cfg);
  auto m = spmv::generate_uniform_gap(256, 256, 4.0, 0xca5a1);
  const auto owner = spmv::row_strip_owner(2);
  const auto deployed = spmv::deploy_matrix(cluster, m, 2, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });
  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = false;
  solver::IteratedSpmv driver(cluster, deployed, config);

  obs::TraceSession::instance().start();
  sched::Engine engine(cluster, {});
  driver.run(engine);
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();

  RealRun out;
  out.parsed = obs::parse_chrome_trace(obs::chrome_trace_json(events));
  for (const auto& ev : out.parsed) {
    if (ev.phase != 's' || ev.flow_id == 0) continue;
    const std::uint64_t ns = ev.flow_id & kFlowNamespaceMask;
    if (ns == kFlowDep) out.dep_starts.insert(ev.flow_id);
    if (ns == kFlowLoad) out.load_starts.insert(ev.flow_id);
  }
  return out;
}

TEST(EngineCausal, EmitsLinkedFlowsAndYieldsACausalGraph) {
  testutil::TempDir dir("causal_engine");
  const RealRun run = run_real_engine(dir);

  // Dep flows: one 's' per produced intermediate; the id is the pure
  // function of the array name, so a known output must be present.
  EXPECT_FALSE(run.dep_starts.empty());
  EXPECT_TRUE(run.dep_starts.count(flow_id_dep(spmv::BlockGrid::vector_name("x", 1, 0))) > 0)
      << "missing dep flow for the iteration-1 vector part";
  // Load flows: cold sub-matrix reads must have issued at least one.
  EXPECT_FALSE(run.load_starts.empty());

  // Every load 's' has a matching terminal point ('t' delivery or 'f').
  std::set<std::uint64_t> load_closers;
  bool has_step = false;
  bool dep_consumed = false;
  for (const auto& ev : run.parsed) {
    if (ev.flow_id == 0) continue;
    const std::uint64_t ns = ev.flow_id & kFlowNamespaceMask;
    if (ns == kFlowLoad && (ev.phase == 't' || ev.phase == 'f')) load_closers.insert(ev.flow_id);
    if (ns == kFlowLoad && ev.phase == 't') has_step = true;
    if (ns == kFlowDep && ev.phase == 'f') dep_consumed = ev.args.count("task") > 0;
  }
  EXPECT_TRUE(has_step) << "storage completion path must emit 't' delivery points";
  EXPECT_TRUE(dep_consumed) << "dep 'f' points must carry the consumer task id";
  for (const std::uint64_t id : run.load_starts) EXPECT_TRUE(load_closers.count(id) > 0);

  // The graph reconstructs: compute nodes exist, at least one has a causal
  // predecessor, and blame tiles the traced makespan.
  const CausalGraph g = CausalGraph::build(run.parsed);
  ASSERT_FALSE(g.empty());
  bool any_pred = false;
  for (const auto& n : g.nodes()) any_pred = any_pred || !n.preds.empty();
  EXPECT_TRUE(any_pred);
  EXPECT_GT(g.blame().total_us(), 0.0);
  EXPECT_LE(g.what_if("io", 0.0), g.makespan_us() + 1e-9);
}

TEST(SimCausal, VirtualTimeRunEmitsTheSameIdScheme) {
  testutil::TempDir dir("causal_sim");
  // Graph-only twin of the real run above (same names, same shape).
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  storage::StorageCluster cluster(2, cfg);
  auto m = spmv::generate_uniform_gap(256, 256, 4.0, 0xca5a1);
  const auto owner = spmv::row_strip_owner(2);
  const auto deployed = spmv::deploy_matrix(cluster, m, 2, owner);

  solver::VirtualArrayCreator creator;
  for (int u = 0; u < 2; ++u) {
    for (int v = 0; v < 2; ++v) {
      creator.add_durable(deployed.name_of(u, v), deployed.bytes_of(u, v),
                          deployed.owner_of(u, v));
    }
    creator.add_durable(spmv::BlockGrid::vector_name("x", 0, u),
                        deployed.grid.part_size(u) * sizeof(double), u);
  }
  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = false;
  solver::IteratedSpmv driver(creator, deployed, config);

  obs::TraceSession::instance().start();
  sim::SimEngine sim(2, sim::SimResources{}, creator.arrays());
  const sim::SimMetrics metrics = sim.run(driver.graph(), sched::LocalPolicy::DataAware);
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();
  EXPECT_GT(metrics.makespan, 0.0);

  const auto parsed = obs::parse_chrome_trace(obs::chrome_trace_json(events));
  std::set<std::uint64_t> dep_starts;
  std::set<std::uint64_t> load_starts;
  for (const auto& ev : parsed) {
    if (ev.phase != 's' || ev.flow_id == 0) continue;
    const std::uint64_t ns = ev.flow_id & kFlowNamespaceMask;
    if (ns == kFlowDep) dep_starts.insert(ev.flow_id);
    if (ns == kFlowLoad) load_starts.insert(ev.flow_id);
  }
  EXPECT_FALSE(dep_starts.empty());
  EXPECT_FALSE(load_starts.empty());

  // The causal machinery works unchanged under virtual time.
  const CausalGraph g = CausalGraph::build(parsed);
  ASSERT_FALSE(g.empty());
  EXPECT_GT(g.blame().total_us(), 0.0);

  // Parity with the real engine: the dep-flow id sets are *equal* (both
  // derive from the same task-graph array names), and at least the cold
  // sub-matrix loads collide on (array, offset 0).
  testutil::TempDir real_dir("causal_sim_real");
  const RealRun real = run_real_engine(real_dir);
  EXPECT_EQ(dep_starts, real.dep_starts);
  std::set<std::uint64_t> common;
  std::set_intersection(load_starts.begin(), load_starts.end(), real.load_starts.begin(),
                        real.load_starts.end(), std::inserter(common, common.begin()));
  EXPECT_FALSE(common.empty());
}

// ---- trace-completeness metadata -------------------------------------------

TEST(TraceMeta, StatsRecordEmbedsAndParses) {
  std::vector<obs::Event> events;
  obs::Event ev;
  ev.phase = obs::Phase::Instant;
  ev.cat = obs::intern("test");
  ev.name = obs::intern("tick");
  ev.ts_ns = 1000;
  events.push_back(ev);

  obs::TraceMeta meta;
  meta.dropped_events = 5;
  meta.ring_capacity = 1024;
  meta.interned_strings = 33;
  const auto parsed = obs::parse_chrome_trace(obs::chrome_trace_json(events, &meta));
  const auto it = std::find_if(parsed.begin(), parsed.end(), [](const ParsedEvent& e) {
    return e.phase == 'M' && e.name == "dooc_trace_stats";
  });
  ASSERT_NE(it, parsed.end());
  EXPECT_DOUBLE_EQ(it->args.at("dropped_events"), 5.0);
  EXPECT_DOUBLE_EQ(it->args.at("ring_capacity"), 1024.0);
  EXPECT_DOUBLE_EQ(it->args.at("interned_strings"), 33.0);
}

TEST(TraceMeta, SessionStopWritesStatsIntoTheFile) {
  testutil::TempDir dir("causal_meta");
  const std::string path = dir.str() + "/trace.json";
  obs::TraceSession::instance().start(path);
  obs::emit_instant(obs::intern("test"), obs::intern("tick"), 0, 0);
  obs::TraceSession::instance().stop();

  const auto parsed = obs::load_chrome_trace(path);
  const auto it = std::find_if(parsed.begin(), parsed.end(), [](const ParsedEvent& e) {
    return e.phase == 'M' && e.name == "dooc_trace_stats";
  });
  ASSERT_NE(it, parsed.end());
  EXPECT_DOUBLE_EQ(it->args.at("dropped_events"), 0.0);
  EXPECT_GT(it->args.at("ring_capacity"), 0.0);
  EXPECT_GT(it->args.at("interned_strings"), 0.0);
}

}  // namespace
}  // namespace dooc
