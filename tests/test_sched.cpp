#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "sched/global_scheduler.hpp"
#include "sched/task.hpp"
#include "test_util.hpp"

namespace dooc::sched {
namespace {

using storage::Interval;

Task make_task(std::string name, std::vector<Interval> in, std::vector<Interval> out) {
  Task t;
  t.name = std::move(name);
  t.kind = "test";
  t.inputs = std::move(in);
  t.outputs = std::move(out);
  return t;
}

TEST(TaskGraph, DerivesEdgesFromIntervalOverlap) {
  TaskGraph g;
  const TaskId a = g.add(make_task("a", {}, {{"x", 0, 100}}));
  const TaskId b = g.add(make_task("b", {{"x", 0, 50}}, {{"y", 0, 50}}));
  const TaskId c = g.add(make_task("c", {{"x", 50, 50}}, {{"z", 0, 50}}));
  const TaskId d = g.add(make_task("d", {{"y", 0, 50}, {"z", 0, 50}}, {{"w", 0, 50}}));
  g.build();

  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.successors(a), (std::vector<TaskId>{b, c}));
  EXPECT_EQ(g.predecessors(d), (std::vector<TaskId>{b, c}));
  EXPECT_EQ(g.topo_order(), (std::vector<TaskId>{a, b, c, d}));
}

TEST(TaskGraph, NonOverlappingIntervalsCreateNoEdge) {
  TaskGraph g;
  g.add(make_task("a", {}, {{"x", 0, 50}}));
  const TaskId b = g.add(make_task("b", {{"x", 50, 50}}, {}));
  // b reads a different region of x than a writes: no producer exists.
  // Register another writer of that region to keep the read satisfiable.
  g.add(make_task("c", {}, {{"x", 50, 50}}));
  g.build();
  EXPECT_EQ(g.predecessors(b).size(), 1u);
  EXPECT_EQ(g.task(g.predecessors(b)[0]).name, "c");
}

TEST(TaskGraph, WriteOnceViolationDetected) {
  TaskGraph g;
  g.add(make_task("w1", {}, {{"x", 0, 100}}));
  g.add(make_task("w2", {}, {{"x", 50, 100}}));
  EXPECT_THROW(g.build(), ImmutabilityViolation);
}

TEST(TaskGraph, SelfReadThrows) {
  TaskGraph g;
  g.add(make_task("loop", {{"x", 0, 10}}, {{"x", 0, 10}}));
  EXPECT_THROW(g.build(), InvalidArgument);
}

TEST(TaskGraph, WriterOfResolvesProducers) {
  TaskGraph g;
  const TaskId a = g.add(make_task("a", {}, {{"x", 0, 100}}));
  g.build();
  EXPECT_EQ(g.writer_of({"x", 10, 20}), a);
  EXPECT_EQ(g.writer_of({"y", 0, 10}), kInvalidTask);
}

class FakeLocator final : public DataLocator {
 public:
  explicit FakeLocator(std::map<std::string, int> homes) : homes_(std::move(homes)) {}
  [[nodiscard]] int home_of(const storage::ArrayName& name) const override {
    auto it = homes_.find(name);
    return it == homes_.end() ? -1 : it->second;
  }

 private:
  std::map<std::string, int> homes_;
};

TEST(GlobalScheduler, AffinityFollowsTheBytes) {
  TaskGraph g;
  // t reads 1000 bytes from node 1's array and 10 from node 0's.
  g.add(make_task("big0", {}, {{"a", 0, 1000}}));
  const TaskId t = g.add(make_task("t", {{"a", 0, 1000}, {"b", 0, 10}}, {{"c", 0, 10}}));
  // consumer of c should follow t's assignment (producer-located input).
  const TaskId u = g.add(make_task("u", {{"c", 0, 10}}, {{"d", 0, 10}}));
  g.task(0).preferred_node = 1;  // pin the producer of a to node 1
  g.build();

  GlobalScheduler sched(2);
  FakeLocator locator({{"b", 0}});
  const auto assignment = sched.assign(g, locator);
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[t], 1) << "affinity should follow the 1000-byte input";
  EXPECT_EQ(assignment[u], 1) << "consumers follow their producers";
}

TEST(GlobalScheduler, RoundRobinDistributes) {
  TaskGraph g;
  for (int i = 0; i < 6; ++i) {
    g.add(make_task("t" + std::to_string(i), {}, {{"x" + std::to_string(i), 0, 8}}));
  }
  g.build();
  GlobalScheduler sched(3, GlobalPolicy::RoundRobin);
  FakeLocator locator({});
  const auto assignment = sched.assign(g, locator);
  std::vector<int> counts(3, 0);
  for (int node : assignment) ++counts[static_cast<std::size_t>(node)];
  EXPECT_EQ(counts, (std::vector<int>{2, 2, 2}));
}

TEST(GlobalScheduler, PinnedTaskBeyondClusterThrows) {
  TaskGraph g;
  auto t = make_task("t", {}, {{"x", 0, 8}});
  t.preferred_node = 7;
  g.add(std::move(t));
  g.build();
  GlobalScheduler sched(2);
  FakeLocator locator({});
  EXPECT_THROW(sched.assign(g, locator), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

storage::StorageConfig engine_config(const testutil::TempDir& dir) {
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 16ull << 20;
  cfg.default_block_size = 4096;
  return cfg;
}

TEST(Engine, ExecutesDiamondDagInDependencyOrder) {
  testutil::TempDir dir("diamond");
  storage::StorageCluster cluster(1, engine_config(dir));
  cluster.node(0).create_array("a", 8, 8);
  cluster.node(0).create_array("b", 8, 8);
  cluster.node(0).create_array("c", 8, 8);
  cluster.node(0).create_array("d", 8, 8);

  TaskGraph g;
  auto writer = [](std::uint64_t value) {
    return [value](TaskContext& ctx) { ctx.output(0).as<std::uint64_t>()[0] = value; };
  };
  Task src = make_task("src", {}, {{"a", 0, 8}});
  src.work = writer(10);
  Task left = make_task("left", {{"a", 0, 8}}, {{"b", 0, 8}});
  left.work = [](TaskContext& ctx) {
    ctx.output(0).as<std::uint64_t>()[0] = ctx.input(0).as<std::uint64_t>()[0] + 1;
  };
  Task right = make_task("right", {{"a", 0, 8}}, {{"c", 0, 8}});
  right.work = [](TaskContext& ctx) {
    ctx.output(0).as<std::uint64_t>()[0] = ctx.input(0).as<std::uint64_t>()[0] * 2;
  };
  Task join = make_task("join", {{"b", 0, 8}, {"c", 0, 8}}, {{"d", 0, 8}});
  join.work = [](TaskContext& ctx) {
    ctx.output(0).as<std::uint64_t>()[0] =
        ctx.input(0).as<std::uint64_t>()[0] + ctx.input(1).as<std::uint64_t>()[0];
  };
  g.add(std::move(src));
  g.add(std::move(left));
  g.add(std::move(right));
  g.add(std::move(join));
  g.build();

  sched::Engine engine(cluster, {});
  const Report report = engine.run(g);
  EXPECT_EQ(report.tasks_executed, 4u);

  auto r = cluster.node(0).request_read({"d", 0, 8}).get();
  EXPECT_EQ(r.as<std::uint64_t>()[0], 11u + 20u);  // (10+1) + (10*2)
}

TEST(Engine, MultiNodeProducerConsumerAcrossNodes) {
  testutil::TempDir dir("cross");
  df::TransportStats transport(2);
  storage::StorageCluster cluster(2, engine_config(dir), &transport);
  cluster.node(0).create_array("src", 8, 8);
  cluster.node(1).create_array("dst", 8, 8);

  TaskGraph g;
  Task produce = make_task("produce", {}, {{"src", 0, 8}});
  produce.preferred_node = 0;
  produce.work = [](TaskContext& ctx) { ctx.output(0).as<std::uint64_t>()[0] = 5; };
  Task consume = make_task("consume", {{"src", 0, 8}}, {{"dst", 0, 8}});
  consume.preferred_node = 1;
  consume.work = [](TaskContext& ctx) {
    EXPECT_EQ(ctx.node(), 1);
    ctx.output(0).as<std::uint64_t>()[0] = ctx.input(0).as<std::uint64_t>()[0] + 100;
  };
  g.add(std::move(produce));
  g.add(std::move(consume));
  g.build();

  sched::Engine engine(cluster, {});
  engine.run(g);
  auto r = cluster.node(1).request_read({"dst", 0, 8}).get();
  EXPECT_EQ(r.as<std::uint64_t>()[0], 105u);
  EXPECT_GE(transport.cross_node_bytes(), 8u);
}

TEST(Engine, TaskExceptionAbortsRunAndRethrows) {
  testutil::TempDir dir("abort");
  storage::StorageCluster cluster(1, engine_config(dir));
  cluster.node(0).create_array("x", 8, 8);
  TaskGraph g;
  Task bad = make_task("bad", {}, {{"x", 0, 8}});
  bad.work = [](TaskContext&) { throw std::runtime_error("task exploded"); };
  g.add(std::move(bad));
  g.build();
  sched::Engine engine(cluster, {});
  EXPECT_THROW(engine.run(g), std::runtime_error);
}

TEST(Engine, TraceRecordsEveryTask) {
  testutil::TempDir dir("trace");
  storage::StorageCluster cluster(1, engine_config(dir));
  for (int i = 0; i < 4; ++i) {
    cluster.node(0).create_array("t" + std::to_string(i), 8, 8);
  }
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    Task t = make_task("task" + std::to_string(i), {}, {{"t" + std::to_string(i), 0, 8}});
    t.group = 1;
    t.seq = i;
    t.work = [](TaskContext& ctx) { ctx.output(0).as<std::uint64_t>()[0] = 0; };
    g.add(std::move(t));
  }
  g.build();
  sched::Engine engine(cluster, {});
  const Report report = engine.run(g);
  ASSERT_EQ(report.trace.size(), 4u);
  for (const auto& ev : report.trace) {
    EXPECT_GE(ev.end, ev.start);
    EXPECT_EQ(ev.node, 0);
  }
}

TEST(Engine, FifoPolicyRunsInSubmissionOrderOnOneSlot) {
  testutil::TempDir dir("fifo");
  storage::StorageCluster cluster(1, engine_config(dir));
  std::vector<int> order;
  std::mutex order_mutex;
  TaskGraph g;
  for (int i = 0; i < 5; ++i) {
    cluster.node(0).create_array("o" + std::to_string(i), 8, 8);
    Task t = make_task("t" + std::to_string(i), {}, {{"o" + std::to_string(i), 0, 8}});
    t.group = 0;
    t.seq = i;
    t.work = [i, &order, &order_mutex](TaskContext& ctx) {
      std::lock_guard lock(order_mutex);
      order.push_back(i);
      ctx.output(0).as<std::uint64_t>()[0] = 0;
    };
    g.add(std::move(t));
  }
  g.build();
  EngineConfig cfg;
  cfg.local_policy = LocalPolicy::Fifo;
  sched::Engine engine(cluster, cfg);
  engine.run(g);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace dooc::sched
