// Tests for the dooc::obs observability subsystem: event rings, the trace
// session (Chrome JSON round-trip, nesting, disabled path), the metrics
// registry (snapshot/merge semantics) and the Log2Histogram extensions the
// registry relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

using namespace dooc;

namespace {

obs::Event instant_event(std::uint32_t name, std::uint64_t ts) {
  obs::Event ev;
  ev.phase = obs::Phase::Instant;
  ev.cat = obs::intern("test");
  ev.name = name;
  ev.ts_ns = ts;
  return ev;
}

}  // namespace

// ---- EventRing -------------------------------------------------------------

TEST(EventRing, WrapsAroundAcrossManyDrains) {
  obs::EventRing<obs::Event> ring(8);
  std::vector<obs::Event> out;
  const std::uint32_t name = obs::intern("wrap");
  // Push far more events than the capacity, draining every 3 pushes: the
  // head/tail indices wrap the 8-slot buffer many times over.
  std::uint64_t pushed = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_push(instant_event(name, pushed)));
      ++pushed;
    }
    ring.drain(out);
  }
  ASSERT_EQ(out.size(), pushed);
  for (std::uint64_t i = 0; i < pushed; ++i) {
    EXPECT_EQ(out[i].ts_ns, i);  // FIFO order preserved across wraps
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, RejectsNewestWhenFullAndCountsAbandoned) {
  obs::EventRing<obs::Event> ring(4);
  const std::uint32_t name = obs::intern("full");
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(instant_event(name, i)));
  // Full ring rejects; a rejection is only a drop once the caller gives up.
  EXPECT_FALSE(ring.try_push(instant_event(name, 99)));
  EXPECT_FALSE(ring.try_push(instant_event(name, 100)));
  EXPECT_EQ(ring.dropped(), 0u);
  ring.note_dropped();
  ring.note_dropped();
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<obs::Event> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.back().ts_ns, 3u);  // the oldest four survive, newest rejected
  // After draining, pushes succeed again.
  EXPECT_TRUE(ring.try_push(instant_event(name, 4)));
}

// ---- TraceSession ----------------------------------------------------------

TEST(TraceSession, CollectsEveryEventFromConcurrentWriters) {
  auto& session = obs::TraceSession::instance();
  session.start();  // collect-only
  // Each thread owns its ring; with 4 threads x 40k events the rings (8k
  // slots) wrap and self-drain many times. Nothing may be lost.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40000;
  const std::uint32_t cat = obs::intern("test");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint32_t name = obs::intern("writer" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        obs::Event ev;
        ev.phase = obs::Phase::Instant;
        ev.cat = cat;
        ev.name = name;
        ev.ts_ns = static_cast<std::uint64_t>(i);
        ev.pid = t;
        session.emit(ev);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto events = session.stop();
  EXPECT_EQ(session.dropped(), 0u);
  std::size_t ours = 0;
  std::vector<std::size_t> per_thread(kThreads, 0);
  for (const auto& ev : events) {
    if (ev.cat != cat) continue;  // other subsystems may trace too
    ++ours;
    ASSERT_GE(ev.pid, 0);
    ASSERT_LT(ev.pid, kThreads);
    ++per_thread[static_cast<std::size_t>(ev.pid)];
  }
  EXPECT_EQ(ours, static_cast<std::size_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[static_cast<std::size_t>(t)], kPerThread);
}

TEST(TraceSession, DisabledPathIsANoOp) {
  auto& session = obs::TraceSession::instance();
  if (session.active()) session.stop();
  ASSERT_FALSE(obs::trace_enabled());
  // Emitting while disabled must leave nothing behind.
  const std::uint32_t cat = obs::intern("disabled-test");
  obs::emit_instant(cat, obs::intern("dropped"), -1, 0);
  session.emit(instant_event(obs::intern("dropped-too"), 1));
  session.start();
  const auto events = session.stop();
  for (const auto& ev : events) EXPECT_NE(ev.cat, cat);
}

TEST(TraceSession, ChromeJsonRoundTripPreservesNesting) {
  auto& session = obs::TraceSession::instance();
  session.start();
  {
    obs::Span outer("test", "outer", /*pid=*/7);
    outer.arg("depth", 1);
    {
      obs::Span inner("test", "inner", /*pid=*/7);
      inner.arg("depth", 2);
      obs::emit_instant(obs::intern("test"), obs::intern("tick"), 7, obs::current_thread_lane());
    }
  }
  obs::emit_counter(obs::intern("test"), obs::intern("water"), 7, 42);
  const auto events = session.stop();
  const std::string json = obs::chrome_trace_json(events);

  const auto parsed = obs::parse_chrome_trace(json);
  // Pull back our events by category.
  std::vector<obs::ParsedEvent> mine;
  for (const auto& ev : parsed) {
    if (ev.cat == "test") mine.push_back(ev);
  }
  ASSERT_EQ(mine.size(), 4u);

  const auto find = [&](const std::string& name) -> const obs::ParsedEvent& {
    for (const auto& ev : mine) {
      if (ev.name == name) return ev;
    }
    ADD_FAILURE() << "missing event " << name;
    return mine.front();
  };
  const auto& outer = find("outer");
  const auto& inner = find("inner");
  const auto& tick = find("tick");
  const auto& water = find("water");

  EXPECT_EQ(outer.phase, 'X');
  EXPECT_EQ(inner.phase, 'X');
  EXPECT_EQ(tick.phase, 'i');
  EXPECT_EQ(water.phase, 'C');
  EXPECT_EQ(outer.pid, 7);
  EXPECT_EQ(outer.args.at("depth"), 1.0);
  EXPECT_EQ(inner.args.at("depth"), 2.0);
  EXPECT_EQ(water.args.at("value"), 42.0);

  // Nesting: inner and the instant fall inside outer on the same lane.
  // (%.3f us rounding in the writer allows sub-ns slack.)
  const double eps = 0.01;
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us - eps);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + eps);
  EXPECT_GE(tick.ts_us, inner.ts_us - eps);
  EXPECT_LE(tick.ts_us, inner.ts_us + inner.dur_us + eps);

  // And the reader's analytics see the spans.
  const auto summary = obs::summarize(parsed);
  EXPECT_GT(summary.category_busy_us.at("test"), 0.0);
  EXPECT_EQ(summary.category_events.at("test"), 2u);  // the two X events
}

// ---- Metrics ---------------------------------------------------------------

namespace {

obs::MetricsSnapshot single_counter(const std::string& name, int node, std::uint64_t v) {
  obs::MetricsSnapshot s;
  auto& e = s.entries[{name, node}];
  e.kind = obs::MetricKind::Counter;
  e.count = v;
  return s;
}

bool snapshots_equal(const obs::MetricsSnapshot& a, const obs::MetricsSnapshot& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (const auto& [key, ea] : a.entries) {
    const auto it = b.entries.find(key);
    if (it == b.entries.end()) return false;
    const auto& eb = it->second;
    if (ea.kind != eb.kind || ea.count != eb.count) return false;
    if (std::abs(ea.value - eb.value) > 1e-12) return false;
    if (ea.hist.stats().count() != eb.hist.stats().count()) return false;
    if (ea.hist.stats().count() > 0 && std::abs(ea.hist.quantile(0.5) - eb.hist.quantile(0.5)) > 1e-9)
      return false;
  }
  return true;
}

}  // namespace

TEST(Metrics, RegistryScopedByNodeAndSnapshot) {
  auto& m = obs::Metrics::instance();
  auto& c0 = m.counter("unit.reads", 0);
  auto& c1 = m.counter("unit.reads", 1);
  ASSERT_NE(&c0, &c1);
  ASSERT_EQ(&c0, &m.counter("unit.reads", 0));  // stable reference
  c0.add(3);
  c1.add(5);
  m.gauge("unit.depth").set(2.5);
  m.histogram("unit.lat_us").add(100.0);
  m.histogram("unit.lat_us").add(200.0);

  const auto snap = m.snapshot();
  EXPECT_EQ(snap.entries.at({"unit.reads", 0}).count, 3u);
  EXPECT_EQ(snap.entries.at({"unit.reads", 1}).count, 5u);
  EXPECT_DOUBLE_EQ(snap.entries.at({"unit.depth", -1}).value, 2.5);
  EXPECT_EQ(snap.entries.at({"unit.lat_us", -1}).hist.stats().count(), 2u);

  const auto text = snap.to_text();
  EXPECT_NE(text.find("unit.reads"), std::string::npos);
  EXPECT_NE(text.find("unit.lat_us"), std::string::npos);
}

TEST(Metrics, SnapshotMergeIsAssociative) {
  // Counters with overlapping and disjoint keys, plus histograms.
  auto a = single_counter("m.x", -1, 1);
  auto b = single_counter("m.x", -1, 10);
  auto c = single_counter("m.y", 2, 100);
  {
    auto& e = c.entries[{"m.h", -1}];
    e.kind = obs::MetricKind::Histogram;
    e.hist.add(4.0);
    e.hist.add(64.0);
  }
  {
    auto& e = b.entries[{"m.h", -1}];
    e.kind = obs::MetricKind::Histogram;
    e.hist.add(16.0);
  }

  // (a + b) + c
  auto left = a;
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  auto bc = b;
  bc.merge(c);
  auto right = a;
  right.merge(bc);

  EXPECT_TRUE(snapshots_equal(left, right));
  EXPECT_EQ(left.entries.at({"m.x", -1}).count, 11u);
  EXPECT_EQ(left.entries.at({"m.y", 2}).count, 100u);
  EXPECT_EQ(left.entries.at({"m.h", -1}).hist.stats().count(), 3u);
}

// ---- Log2Histogram additions ----------------------------------------------

TEST(Log2Histogram, QuantileInterpolatesWithinBuckets) {
  Log2Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  // p50 of 1..100 sits near 50; log2 buckets give coarse but bounded answers.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  // Quantiles clamp to the observed range.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // Monotone in p.
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
  // Empty histogram.
  Log2Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Log2Histogram, MergeMatchesCombinedStream) {
  Log2Histogram a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double xa = 3.0 * i + 1.0;
    const double xb = 700.0 + 11.0 * i;
    a.add(xa);
    b.add(xb);
    combined.add(xa);
    combined.add(xb);
  }
  a.merge(b);
  EXPECT_EQ(a.stats().count(), combined.stats().count());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), combined.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.99), combined.quantile(0.99));
}
