#include <gtest/gtest.h>

#include "simcluster/flow_network.hpp"
#include "simcluster/testbed.hpp"

namespace dooc::sim {
namespace {

TEST(FlowNetwork, SingleFlowRunsAtResourceCap) {
  FlowNetwork net;
  const auto r = net.add_resource("link", 100.0);
  net.start_flow(1000, {r});
  EXPECT_NEAR(net.next_completion_delta(), 10.0, 1e-9);
}

TEST(FlowNetwork, FairShareBetweenFlows) {
  FlowNetwork net;
  const auto r = net.add_resource("link", 100.0);
  net.start_flow(1000, {r});
  net.start_flow(1000, {r});
  // Each gets 50 B/s -> both complete after 20 s.
  EXPECT_NEAR(net.next_completion_delta(), 20.0, 1e-9);
  const auto done = net.advance(20.0);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_FALSE(net.has_active_flows());
}

TEST(FlowNetwork, RatesRiseWhenAFlowFinishes) {
  FlowNetwork net;
  const auto r = net.add_resource("link", 100.0);
  net.start_flow(500, {r});    // finishes first
  net.start_flow(2000, {r});
  net.advance(10.0);           // flow 1 done (50 B/s * 10 = 500)
  EXPECT_EQ(net.active_flows(), 1u);
  // Remaining flow now runs at the full 100 B/s: 1500 left -> 15 s.
  EXPECT_NEAR(net.next_completion_delta(), 15.0, 1e-9);
}

TEST(FlowNetwork, PerFlowCapBinds) {
  FlowNetwork net;
  const auto r = net.add_resource("link", 100.0);
  net.start_flow(1000, {r}, 10.0);  // capped at 10 B/s
  EXPECT_NEAR(net.next_completion_delta(), 100.0, 1e-9);
}

TEST(FlowNetwork, AggregateCapSharedAcrossNodeLinks) {
  // Two node links of 100 each but an aggregate of 120: each flow gets 60.
  FlowNetwork net;
  const auto agg = net.add_resource("aggregate", 120.0);
  const auto n0 = net.add_resource("node0", 100.0);
  const auto n1 = net.add_resource("node1", 100.0);
  net.start_flow(600, {n0, agg});
  net.start_flow(600, {n1, agg});
  EXPECT_NEAR(net.next_completion_delta(), 10.0, 1e-9);
}

TEST(FlowNetwork, WaterFillingRedistributesHeadroom) {
  // One capped flow (10) plus one open flow share a 100-link: open gets 90.
  FlowNetwork net;
  const auto r = net.add_resource("link", 100.0);
  net.start_flow(1000, {r}, 10.0);
  net.start_flow(900, {r});
  EXPECT_NEAR(net.next_completion_delta(), 10.0, 1e-9);  // open: 900/90
}

TEST(FlowNetwork, MultiResourcePathTakesTightest) {
  FlowNetwork net;
  const auto wide = net.add_resource("wide", 1000.0);
  const auto narrow = net.add_resource("narrow", 10.0);
  net.start_flow(100, {wide, narrow});
  EXPECT_NEAR(net.next_completion_delta(), 10.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Testbed
// ---------------------------------------------------------------------------

TEST(Testbed, SingleNodeIsIoBound) {
  TestbedExperiment e;
  e.nodes = 1;
  const auto r = run_testbed(e);
  // 4 iterations x 0.1 TB at <= 1.5 GB/s can't beat 267 s.
  EXPECT_GT(r.time_seconds(), 260.0);
  EXPECT_LT(r.time_seconds(), 400.0);
  EXPECT_NEAR(r.read_bandwidth() / 1e9, 1.5, 0.2);
  EXPECT_NEAR(r.experiment.matrix_terabytes(), 0.10, 0.01);
}

TEST(Testbed, ReadBandwidthPlateausAfter16Nodes) {
  TestbedExperiment e;
  e.mode = solver::ReductionMode::Interleaved;
  std::vector<double> bw;
  for (int n : {1, 4, 9, 16, 25, 36}) {
    e.nodes = n;
    bw.push_back(run_testbed(e).read_bandwidth());
  }
  // Linear-ish growth up to 9 nodes...
  EXPECT_NEAR(bw[1] / bw[0], 4.0, 0.6);
  EXPECT_NEAR(bw[2] / bw[0], 9.0, 1.2);
  // ...then the GPFS aggregate cap: 16, 25 and 36 nodes all saturate.
  EXPECT_NEAR(bw[3] / 1e9, 18.6, 0.8);
  EXPECT_NEAR(bw[4] / 1e9, 18.6, 0.8);
  EXPECT_NEAR(bw[5] / 1e9, 18.6, 0.8);
}

TEST(Testbed, InterleavingBeatsSimplePolicyAtScale) {
  // The paper's Table IV runs are "17%-28% faster" than Table III at >= 9
  // nodes; check direction and a sane magnitude band.
  for (int n : {9, 16, 25}) {
    TestbedExperiment e;
    e.nodes = n;
    e.mode = solver::ReductionMode::Simple;
    const double t_simple = run_testbed(e).time_seconds();
    e.mode = solver::ReductionMode::Interleaved;
    const double t_inter = run_testbed(e).time_seconds();
    const double gain = (t_simple - t_inter) / t_simple;
    EXPECT_GT(gain, 0.08) << n << " nodes";
    EXPECT_LT(gain, 0.40) << n << " nodes";
  }
}

TEST(Testbed, SimplePolicyWastesMoreTimeOutsideIo) {
  TestbedExperiment e;
  e.nodes = 16;
  e.mode = solver::ReductionMode::Simple;
  const double no_simple = run_testbed(e).non_overlapped();
  e.mode = solver::ReductionMode::Interleaved;
  const double no_inter = run_testbed(e).non_overlapped();
  EXPECT_GT(no_simple, no_inter + 0.10);
  EXPECT_GT(no_simple, 0.25);  // paper: 36%
  EXPECT_LT(no_inter, 0.20);   // paper: 14%
}

TEST(Testbed, GflopsScaleThenSaturate) {
  TestbedExperiment e;
  e.mode = solver::ReductionMode::Interleaved;
  e.nodes = 1;
  const double g1 = run_testbed(e).gflops();
  e.nodes = 9;
  const double g9 = run_testbed(e).gflops();
  e.nodes = 36;
  const double g36 = run_testbed(e).gflops();
  EXPECT_NEAR(g9 / g1, 8.0, 1.5);      // near-linear to 9 nodes
  EXPECT_LT(g36 / g9, 2.0);            // far from 4x: the plateau
}

TEST(Testbed, OversizedNineNodeRunBeatsThirtySixNodeCpuHours) {
  // The paper's ★: the 3.5 TB matrix on 9 nodes costs fewer CPU-hours per
  // iteration than on 36 nodes (6.59 vs 18.2), at better per-node BW.
  TestbedExperiment base;
  base.mode = solver::ReductionMode::Simple;
  base.nodes = 36;
  const auto r36 = run_testbed(base);
  const auto r9 = run_testbed_oversized(9, 36, base);
  EXPECT_NEAR(r9.experiment.matrix_terabytes(), 3.5, 0.2);
  EXPECT_LT(r9.cpu_hours_per_iteration(), 0.6 * r36.cpu_hours_per_iteration());
  EXPECT_GT(r9.time_seconds(), r36.time_seconds());  // slower wall-clock...
  // ...but only modestly (paper: 1318 s vs 1172 s, i.e. ~12% longer).
  EXPECT_LT(r9.time_seconds(), 1.6 * r36.time_seconds());
}

TEST(Testbed, DeterministicAcrossRuns) {
  TestbedExperiment e;
  e.nodes = 4;
  const auto a = run_testbed(e);
  const auto b = run_testbed(e);
  EXPECT_DOUBLE_EQ(a.time_seconds(), b.time_seconds());
  EXPECT_EQ(a.metrics.disk_bytes, b.metrics.disk_bytes);
}

TEST(Testbed, RelativeToOptimalIoAboveOne) {
  // Fig. 6: runtime relative to the 20 GB/s-optimal time is > 1 everywhere
  // and worst at small node counts (the single client can't pull 20 GB/s).
  TestbedExperiment e;
  e.mode = solver::ReductionMode::Interleaved;
  e.nodes = 1;
  const double r1 = run_testbed(e).relative_to_optimal_io();
  e.nodes = 16;
  const double r16 = run_testbed(e).relative_to_optimal_io();
  EXPECT_GT(r1, 10.0);   // 1 node: ~13x (1.5 vs 20 GB/s)
  EXPECT_LT(r16, 1.6);   // near-optimal at the plateau
  EXPECT_GT(r16, 1.0);
}

TEST(Testbed, RejectsNonSquareNodeCounts) {
  TestbedExperiment e;
  e.nodes = 7;
  EXPECT_THROW(run_testbed(e), InvalidArgument);
}

TEST(Testbed, LruReuseReducesDiskTraffic) {
  // With 20 GB of memory and 25 x 4 GB of blocks, a few blocks survive
  // between iterations, so disk traffic is below 4 full sweeps.
  TestbedExperiment e;
  e.nodes = 1;
  const auto r = run_testbed(e);
  const double full = 4.0 * 25.0 * 4e9;
  EXPECT_LT(static_cast<double>(r.metrics.disk_bytes), 0.98 * full);
  EXPECT_GT(static_cast<double>(r.metrics.disk_bytes), 0.80 * full);
}

}  // namespace
}  // namespace dooc::sim
