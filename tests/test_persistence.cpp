// Persistence and failure-injection tests.
//
// The paper's storage layer persists arrays in scratch directories and
// re-registers them on startup ("Upon start of the system, the storage
// looks for files in that directory and records the name of the arrays as
// well as their sizes"). That makes the out-of-core solver restartable: a
// run can stop after iteration j, the process can die, and a new cluster
// over the same scratch directories continues from the flushed iterate.
#include <gtest/gtest.h>

#include <fstream>

#include "sched/engine.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

storage::StorageConfig persistent_config(const std::string& root) {
  storage::StorageConfig cfg;
  cfg.scratch_root = root;
  // One block per scanned file: sub-matrix files must stay single-block.
  cfg.default_block_size = 1ull << 30;
  cfg.memory_budget = 64ull << 20;
  return cfg;
}

TEST(Persistence, IteratedSpmvSurvivesAProcessRestart) {
  testutil::TempDir dir("restart");
  const std::uint64_t n = 90;
  auto m = spmv::generate_uniform_gap(n, n, 2.0, 0xdead);
  for (auto& v : m.values) v *= 0.1;
  const auto owner = spmv::column_strip_owner(2);

  spmv::DeployedMatrix deployed;
  // ---- "first process": deploy, run 2 iterations, flush the iterate ----
  {
    storage::StorageCluster cluster(2, persistent_config(dir.str()));
    deployed = spmv::deploy_matrix(cluster, m, 3, owner);
    spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                    [](std::uint64_t i) { return 1.0 + 0.01 * static_cast<double>(i); });
    solver::IteratedSpmvConfig config;
    config.iterations = 2;
    solver::IteratedSpmv driver(cluster, deployed, config);
    sched::Engine engine(cluster, {});
    driver.run(engine);
    // Make the state durable: the final iterate AND the initial vector
    // (sub-matrix files are already on disk).
    for (int u = 0; u < 3; ++u) {
      const auto name = spmv::BlockGrid::vector_name("x", 2, u);
      auto meta = cluster.node(0).array_meta(name);
      ASSERT_TRUE(meta.has_value());
      cluster.node(meta->home_node).flush_array(name);
    }
    // Cluster destructs here — the "crash" boundary. DRAM state is gone.
  }

  // ---- "second process": scan the scratch dirs and continue -------------
  {
    storage::StorageCluster cluster(2, persistent_config(dir.str()));
    std::size_t found = 0;
    for (int node = 0; node < 2; ++node) found += cluster.node(node).scan_scratch();
    // 9 sub-matrices + 3 flushed iterate parts (x0 was never flushed).
    EXPECT_EQ(found, 12u);

    // Rebuild the deployment metadata from the catalog (sizes/owners).
    spmv::DeployedMatrix redeployed;
    redeployed.grid = deployed.grid;
    redeployed.prefix = "A";
    const auto cells = static_cast<std::size_t>(9);
    redeployed.owner.resize(cells);
    redeployed.nnz = deployed.nnz;  // generator metadata survives in tests
    redeployed.bytes.resize(cells);
    for (int u = 0; u < 3; ++u) {
      for (int v = 0; v < 3; ++v) {
        const auto meta = cluster.node(0).array_meta(spmv::BlockGrid::matrix_name(u, v));
        ASSERT_TRUE(meta.has_value()) << "sub-matrix missing after restart";
        redeployed.owner[static_cast<std::size_t>(u) * 3 + v] = meta->home_node;
        redeployed.bytes[static_cast<std::size_t>(u) * 3 + v] = meta->size;
      }
    }

    solver::IteratedSpmvConfig config;
    config.iterations = 1;
    config.first_iteration = 3;  // continue where the first process stopped
    solver::IteratedSpmv driver(cluster, redeployed, config);
    sched::Engine engine(cluster, {});
    driver.run(engine);

    // Reference: three full iterations in memory.
    std::vector<double> x(n);
    for (std::uint64_t i = 0; i < n; ++i) x[i] = 1.0 + 0.01 * static_cast<double>(i);
    std::vector<double> y(n);
    for (int it = 0; it < 3; ++it) {
      m.multiply(x, y);
      x.swap(y);
    }
    const auto got = driver.gather_result();
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], x[i], 1e-9 * (1.0 + std::abs(x[i]))) << "i=" << i;
    }
  }
}

TEST(Persistence, FlushedDataSurvivesWithByteFidelity) {
  testutil::TempDir dir("fidelity");
  const std::string root = dir.str();
  {
    storage::StorageCluster cluster(1, persistent_config(root));
    auto& node = cluster.node(0);
    node.create_array("gold", 4096, 4096);
    auto w = node.request_write({"gold", 0, 4096}).get();
    auto span = w.as<std::uint64_t>();
    for (std::size_t i = 0; i < span.size(); ++i) span[i] = i * 2654435761u;
    w.release();
    node.flush_array("gold");
  }
  {
    storage::StorageCluster cluster(1, persistent_config(root));
    EXPECT_EQ(cluster.node(0).scan_scratch(), 1u);
    auto r = cluster.node(0).request_read({"gold", 0, 4096}).get();
    auto span = r.as<std::uint64_t>();
    for (std::size_t i = 0; i < span.size(); ++i) {
      ASSERT_EQ(span[i], i * 2654435761u) << "corruption at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(FailureInjection, TruncatedBackingFileFailsTheReadNotTheProcess) {
  testutil::TempDir dir("trunc");
  storage::StorageCluster cluster(1, persistent_config(dir.str()));
  auto& node = cluster.node(0);
  const std::string path = node.scratch_dir() + "/victim";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(8192, 'v');
    out.write(junk.data(), 8192);
  }
  node.import_file("victim", path, 8192);
  // Sabotage: truncate the file behind the storage layer's back.
  std::filesystem::resize_file(path, 100);

  auto f = node.request_read({"victim", 0, 8192});
  EXPECT_THROW(f.get(), IoError);
  // The node remains usable for other arrays afterwards.
  node.create_array("ok", 64, 64);
  auto w = node.request_write({"ok", 0, 64}).get();
  w.release();
  auto r = node.request_read({"ok", 0, 64}).get();
  EXPECT_EQ(r.bytes().size(), 64u);
}

TEST(FailureInjection, DeletedBackingFileFailsReloadAfterEviction) {
  testutil::TempDir dir("unlink");
  storage::StorageConfig cfg = persistent_config(dir.str());
  cfg.memory_budget = 4096;
  cfg.default_block_size = 4096;
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  const std::string path = node.scratch_dir() + "/victim";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(8192, 'v');
    out.write(junk.data(), 8192);
  }
  node.import_file("victim", path, 4096);
  {
    auto r = node.request_read({"victim", 0, 4096}).get();
  }
  std::filesystem::remove(path);
  // Force the eviction of block 0 by loading block 1... which already fails
  // because the file is gone; either way the failure is contained.
  auto f = node.request_read({"victim", 4096, 4096});
  EXPECT_THROW(f.get(), IoError);
}

TEST(FailureInjection, EngineSurvivesTaskBodyFailureMidGraph) {
  testutil::TempDir dir("midfail");
  storage::StorageCluster cluster(1, persistent_config(dir.str()));
  for (int i = 0; i < 6; ++i) {
    cluster.node(0).create_array("t" + std::to_string(i), 8, 8);
  }
  sched::TaskGraph g;
  for (int i = 0; i < 6; ++i) {
    sched::Task t;
    t.name = "t" + std::to_string(i);
    t.kind = "test";
    t.outputs.push_back({"t" + std::to_string(i), 0, 8});
    t.group = 0;
    t.seq = i;
    t.work = [i](sched::TaskContext& ctx) {
      if (i == 3) throw std::runtime_error("injected failure");
      ctx.output(0).as<std::uint64_t>()[0] = 1;
    };
    g.add(std::move(t));
  }
  g.build();
  sched::EngineConfig ecfg;
  ecfg.local_policy = sched::LocalPolicy::Fifo;
  sched::Engine engine(cluster, ecfg);
  EXPECT_THROW(engine.run(g), std::runtime_error);

  // The cluster is still usable after the aborted run.
  cluster.node(0).create_array("after", 8, 8);
  auto w = cluster.node(0).request_write({"after", 0, 8}).get();
  w.release();
  EXPECT_TRUE(cluster.node(0).is_resident({"after", 0, 8}));
}

}  // namespace
}  // namespace dooc
