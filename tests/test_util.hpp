// Shared test helpers.
#pragma once

#include <filesystem>
#include <random>
#include <string>

namespace dooc::testutil {

/// Unique scratch directory under the build tree, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("dooc_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace dooc::testutil
