// Task-lifecycle tests for the completion-driven execution core shared by
// sched::Engine and the DES: ExecutorCore state transitions, the prefetch
// window, refresh promotion/demotion, and the engine's event-driven worker
// path — including shutdown with storage requests still in flight.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>

#include "obs/metrics.hpp"
#include "sched/engine.hpp"
#include "sched/executor_core.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc::sched {
namespace {

using storage::Interval;

Task make_task(std::string name, std::vector<Interval> in, std::vector<Interval> out) {
  Task t;
  t.name = std::move(name);
  t.kind = "test";
  t.inputs = std::move(in);
  t.outputs = std::move(out);
  return t;
}

/// Residency scripted per array name; tests flip entries between calls.
class FakeProbe final : public ResidencyProbe {
 public:
  std::set<std::string> resident;

  std::uint64_t resident_input_bytes(int, const Task& task) override {
    std::uint64_t bytes = 0;
    for (const auto& in : task.inputs) {
      if (resident.count(in.array) != 0) bytes += in.length;
    }
    return bytes;
  }
  bool inputs_resident(int, const Task& task) override {
    for (const auto& in : task.inputs) {
      if (resident.count(in.array) == 0) return false;
    }
    return true;
  }
};

TEST(ExecutorCore, LifecycleWalksAssignedPendingRunnableDone) {
  TaskGraph g;
  const TaskId a = g.add(make_task("a", {}, {{"x", 0, 8}}));
  const TaskId b = g.add(make_task("b", {{"x", 0, 8}}, {{"y", 0, 8}}));
  g.build();
  FakeProbe probe;
  ExecutorCore core(g, {0, 0}, 1, {}, &probe);

  EXPECT_EQ(core.state(a), TaskState::Assigned);
  EXPECT_EQ(core.state(b), TaskState::Waiting);
  EXPECT_EQ(core.backlog(0), 1u);

  // `a` has no inputs: resident class, straight to Runnable on stage(0).
  const StageDecision d = core.next_to_stage(0, StageSelect::Resident);
  ASSERT_EQ(d.task, a);
  core.stage(a, 0);
  EXPECT_EQ(core.state(a), TaskState::Runnable);

  ASSERT_EQ(core.take_runnable(0), a);
  EXPECT_EQ(core.state(a), TaskState::Running);
  std::vector<std::pair<int, TaskId>> newly;
  core.finish(a, newly);
  EXPECT_EQ(core.state(a), TaskState::Done);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], (std::pair<int, TaskId>{0, b}));

  // `b` waits for one input-arrival event per input.
  const StageDecision db = core.next_to_stage(0, StageSelect::Missing);
  ASSERT_EQ(db.task, b);
  core.stage(b, 1);
  EXPECT_EQ(core.state(b), TaskState::InputsPending);
  EXPECT_TRUE(core.note_input(b));
  EXPECT_EQ(core.state(b), TaskState::Runnable);
  ASSERT_EQ(core.take_runnable(0), b);
  core.finish(b, newly);
  EXPECT_TRUE(core.all_done());
}

TEST(ExecutorCore, MissingStagingIsBoundedByTheWindow) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    g.add(make_task("t" + std::to_string(i), {{"in" + std::to_string(i), 0, 8}},
                    {{"out" + std::to_string(i), 0, 8}}));
  }
  // Satisfy the reads: external producers pinned elsewhere don't exist in
  // this synthetic graph, so register writers and finish them first.
  std::vector<TaskId> writers;
  for (int i = 0; i < 4; ++i) {
    writers.push_back(g.add(make_task("w" + std::to_string(i), {}, {{"in" + std::to_string(i), 0, 8}})));
  }
  g.build();
  FakeProbe probe;
  CoreConfig cfg;
  cfg.prefetch_window = 2;
  cfg.demand_slots = 0;
  ExecutorCore core(g, std::vector<int>(g.size(), 0), 1, cfg, &probe);

  std::vector<std::pair<int, TaskId>> newly;
  for (const TaskId w : writers) {
    const StageDecision d = core.next_to_stage(0, StageSelect::Resident);
    ASSERT_NE(d.task, kInvalidTask);
    core.stage(d.task, 0);
    ASSERT_EQ(core.take_runnable(0), d.task);
    core.finish(d.task, newly);
    (void)w;
  }

  // Four readers assigned, nothing resident: only `prefetch_window` may
  // park with loads in flight.
  EXPECT_EQ(core.backlog(0), 4u);
  EXPECT_NE(core.next_to_stage(0, StageSelect::Missing).task, kInvalidTask);
  core.stage(core.pending_tasks(0).back(), 1);
  EXPECT_NE(core.next_to_stage(0, StageSelect::Missing).task, kInvalidTask);
  core.stage(core.pending_tasks(0).back(), 1);
  EXPECT_EQ(core.next_to_stage(0, StageSelect::Missing).task, kInvalidTask)
      << "third missing-class stage must be blocked by the window";
  EXPECT_EQ(core.pending(0), 2u);

  // A resident candidate still stages freely past the exhausted window.
  probe.resident.insert("in3");
  EXPECT_NE(core.next_to_stage(0, StageSelect::Resident).task, kInvalidTask);
}

TEST(ExecutorCore, DemandSlotsExtendTheWindowWhileComputeIsIdle) {
  TaskGraph g;
  g.add(make_task("w", {}, {{"in", 0, 8}}));
  g.add(make_task("r", {{"in", 0, 8}}, {{"out", 0, 8}}));
  g.build();
  FakeProbe probe;
  CoreConfig cfg;
  cfg.prefetch_window = 0;  // no prefetch at all...
  cfg.demand_slots = 1;     // ...but an idle compute slot may demand-stage
  ExecutorCore core(g, {0, 0}, 1, cfg, &probe);

  std::vector<std::pair<int, TaskId>> newly;
  const StageDecision w = core.next_to_stage(0, StageSelect::Resident);
  core.stage(w.task, 0);
  core.take_runnable(0);
  core.finish(w.task, newly);

  const StageDecision r = core.next_to_stage(0, StageSelect::Missing);
  ASSERT_NE(r.task, kInvalidTask) << "idle demand slot must open the window";
  core.stage(r.task, 1);
  EXPECT_EQ(core.next_to_stage(0, StageSelect::Missing).task, kInvalidTask)
      << "the pending task consumes the only demand slot";
}

TEST(ExecutorCore, RefreshPromotesArrivedAndDemotesEvicted) {
  TaskGraph g;
  g.add(make_task("w", {}, {{"in", 0, 8}}));
  const TaskId r = g.add(make_task("r", {{"in", 0, 8}}, {{"out", 0, 8}}));
  g.build();
  FakeProbe probe;
  ExecutorCore core(g, {0, 0}, 1, {}, &probe);

  std::vector<std::pair<int, TaskId>> newly;
  const StageDecision w = core.next_to_stage(0, StageSelect::Resident);
  core.stage(w.task, 0);
  core.take_runnable(0);
  core.finish(w.task, newly);

  // DES-style: park with a symbolic event count, promote by re-probing.
  core.stage(core.next_to_stage(0, StageSelect::Missing).task, 1);
  EXPECT_EQ(core.state(r), TaskState::InputsPending);
  core.refresh(0);
  EXPECT_EQ(core.state(r), TaskState::InputsPending) << "data has not arrived yet";
  probe.resident.insert("in");
  core.refresh(0);
  EXPECT_EQ(core.state(r), TaskState::Runnable);

  // Eviction between turns sends it back to Assigned.
  probe.resident.erase("in");
  core.refresh(0);
  EXPECT_EQ(core.state(r), TaskState::Assigned);
  EXPECT_EQ(core.backlog(0), 1u);
}

TEST(ExecutorCore, DataAwarePolicyPicksResidentBytesAndFlagsReorder) {
  TaskGraph g;
  g.add(make_task("w0", {}, {{"a", 0, 8}}));
  g.add(make_task("w1", {}, {{"b", 0, 800}}));
  Task early = make_task("early", {{"a", 0, 8}}, {{"x", 0, 8}});
  early.group = 0;
  early.seq = 0;
  Task late = make_task("late", {{"b", 0, 800}}, {{"y", 0, 8}});
  late.group = 0;
  late.seq = 1;
  const TaskId t_early = g.add(std::move(early));
  const TaskId t_late = g.add(std::move(late));
  g.build();
  FakeProbe probe;
  ExecutorCore core(g, std::vector<int>(g.size(), 0), 1, {}, &probe);

  std::vector<std::pair<int, TaskId>> newly;
  for (int i = 0; i < 2; ++i) {
    const StageDecision d = core.next_to_stage(0, StageSelect::Resident);
    core.stage(d.task, 0);
    core.take_runnable(0);
    core.finish(d.task, newly);
  }

  // Only the static-late task's big input is resident: the data-aware
  // policy jumps past static order and says so.
  probe.resident.insert("b");
  const StageDecision d = core.next_to_stage(0, StageSelect::Resident);
  EXPECT_EQ(d.task, t_late);
  EXPECT_TRUE(d.reordered);
  EXPECT_EQ(d.over, t_early);
}

// ---------------------------------------------------------------------------
// Engine on the completion-driven path
// ---------------------------------------------------------------------------

storage::StorageConfig engine_config(const testutil::TempDir& dir) {
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 16ull << 20;
  cfg.default_block_size = 4096;
  return cfg;
}

void import_blocks(storage::StorageNode& node, const std::string& dir_path,
                   const std::string& name, int blocks, std::uint64_t block_bytes) {
  const std::string path = dir_path + "/" + name + ".bin";
  std::ofstream out(path, std::ios::binary);
  std::vector<char> data(static_cast<std::size_t>(blocks) * block_bytes, 'z');
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  node.import_file(name, path, block_bytes);
}

TEST(EngineExec, ParkedTasksCompleteAndRecordWaitMetrics) {
  testutil::TempDir dir("parked");
  storage::StorageConfig cfg = engine_config(dir);
  cfg.throttle_read_bw = 4.0 * 1024 * 1024;  // slow enough that tasks park
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  import_blocks(node, node.scratch_dir(), "m", 6, 64 * 1024);

  TaskGraph g;
  for (int i = 0; i < 6; ++i) {
    cluster.node(0).create_array("out" + std::to_string(i), 8, 8);
    Task t = make_task("r" + std::to_string(i),
                       {{"m", static_cast<std::uint64_t>(i) * 64 * 1024, 1024}},
                       {{"out" + std::to_string(i), 0, 8}});
    t.group = 0;
    t.seq = i;
    t.work = [](TaskContext& ctx) {
      ctx.output(0).as<std::uint64_t>()[0] = static_cast<std::uint64_t>(ctx.input(0).bytes()[0]);
    };
    g.add(std::move(t));
  }
  g.build();

  auto& parked = obs::Metrics::instance().counter("sched.tasks_parked", 0);
  const std::uint64_t parked_before = parked.get();
  const std::uint64_t waits_before =
      obs::Metrics::instance().histogram("sched.inputs_pending_us", 0).get().stats().count();

  sched::Engine engine(cluster, {});
  const Report report = engine.run(g);
  EXPECT_EQ(report.tasks_executed, 6u);
  for (int i = 0; i < 6; ++i) {
    auto r = node.request_read({"out" + std::to_string(i), 0, 8}).get();
    EXPECT_EQ(r.as<std::uint64_t>()[0], static_cast<std::uint64_t>('z'));
  }

  EXPECT_GE(parked.get() - parked_before, 1u)
      << "cold reads must park at least one task InputsPending";
  EXPECT_GE(obs::Metrics::instance().histogram("sched.inputs_pending_us", 0).get().stats().count(),
            waits_before + 1);
}

TEST(EngineExec, BlockingIoModeProducesTheSameResults) {
  testutil::TempDir dir("blockio");
  storage::StorageCluster cluster(1, engine_config(dir));
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  import_blocks(node, node.scratch_dir(), "m", 4, 64 * 1024);

  const auto build_graph = [&](TaskGraph& g) {
    for (int i = 0; i < 4; ++i) {
      Task t = make_task("r" + std::to_string(i),
                         {{"m", static_cast<std::uint64_t>(i) * 64 * 1024, 1024}},
                         {{"blk_out" + std::to_string(i), 0, 8}});
      t.seq = i;
      t.work = [](TaskContext& ctx) {
        ctx.output(0).as<std::uint64_t>()[0] =
            static_cast<std::uint64_t>(ctx.input(0).bytes()[0]) + 1;
      };
      g.add(std::move(t));
    }
    g.build();
  };

  for (int i = 0; i < 4; ++i) node.create_array("blk_out" + std::to_string(i), 8, 8);
  TaskGraph g;
  build_graph(g);
  EngineConfig cfg;
  cfg.blocking_io = true;
  sched::Engine engine(cluster, cfg);
  const Report report = engine.run(g);
  EXPECT_EQ(report.tasks_executed, 4u);
  for (int i = 0; i < 4; ++i) {
    auto r = node.request_read({"blk_out" + std::to_string(i), 0, 8}).get();
    EXPECT_EQ(r.as<std::uint64_t>()[0], static_cast<std::uint64_t>('z') + 1);
  }
}

// Satellite of the completion-driven refactor: when a run unwinds with
// storage requests still in flight, their completions must land in a closed
// queue (payload dropped, pins released) — never on freed engine state.
// Run under the tsan/asan presets, this is the use-after-free regression.
TEST(EngineExec, AbortWithLoadsInFlightThenReusesClusterSafely) {
  testutil::TempDir dir("inflight");
  storage::StorageConfig cfg = engine_config(dir);
  cfg.throttle_read_bw = 64.0 * 1024;  // ~1 s per 64 KB block: loads outlive the run
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  import_blocks(node, node.scratch_dir(), "m", 4, 64 * 1024);

  TaskGraph g;
  Task bomb = make_task("bomb", {}, {{"bomb_out", 0, 8}});
  cluster.node(0).create_array("bomb_out", 8, 8);
  bomb.work = [](TaskContext&) { throw std::runtime_error("bomb"); };
  g.add(std::move(bomb));
  for (int i = 0; i < 4; ++i) {
    cluster.node(0).create_array("fly_out" + std::to_string(i), 8, 8);
    Task t = make_task("r" + std::to_string(i),
                       {{"m", static_cast<std::uint64_t>(i) * 64 * 1024, 1024}},
                       {{"fly_out" + std::to_string(i), 0, 8}});
    t.seq = i + 1;
    t.work = [](TaskContext& ctx) { ctx.output(0).as<std::uint64_t>()[0] = 1; };
    g.add(std::move(t));
  }
  g.build();

  sched::Engine engine(cluster, {});
  EXPECT_THROW(engine.run(g), std::runtime_error);

  // The same engine and cluster must stay usable: a second run opens the
  // queues under a new epoch, and any straggler completions of the aborted
  // run are dropped (stale tag), not misrouted to the new run's tasks.
  TaskGraph g2;
  cluster.node(0).create_array("again", 8, 8);
  Task ok = make_task("ok", {{"m", 0, 1024}}, {{"again", 0, 8}});
  ok.work = [](TaskContext& ctx) {
    ctx.output(0).as<std::uint64_t>()[0] = static_cast<std::uint64_t>(ctx.input(0).bytes()[0]);
  };
  g2.add(std::move(ok));
  g2.build();
  const Report report = engine.run(g2);
  EXPECT_EQ(report.tasks_executed, 1u);
  auto r = node.request_read({"again", 0, 8}).get();
  EXPECT_EQ(r.as<std::uint64_t>()[0], static_cast<std::uint64_t>('z'));
}

}  // namespace
}  // namespace dooc::sched
