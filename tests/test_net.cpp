// dooc::net tests: wire framing + CRC, hostile/malformed payload decoding,
// the in-process hub, real Unix/TCP socket loopback (handshake, partial
// reads, mid-frame disconnects), and an in-process NodeServer/Coordinator
// cluster asserting bitwise parity with the single-process engine.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "common/serialize.hpp"
#include "dataflow/transport.hpp"
#include "net/coordinator.hpp"
#include "net/inproc.hpp"
#include "net/manifest.hpp"
#include "net/node_server.hpp"
#include "net/protocol.hpp"
#include "net/socket_transport.hpp"
#include "net/spmv_job.hpp"
#include "net/wire.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> pattern_bytes(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 131 + 7) & 0xFF);
  return v;
}

DataBuffer pattern_buffer(std::size_t n) {
  const auto v = pattern_bytes(n);
  return DataBuffer::copy_of(v.data(), v.size());
}

/// Drain events until one of `kind` arrives (or the deadline passes).
bool wait_for(net::Transport& t, net::RecvEvent::Kind kind, net::RecvEvent& out,
              int total_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(total_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    net::RecvEvent ev;
    if (!t.recv(ev, 100)) continue;
    if (ev.kind == kind) {
      out = std::move(ev);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------- wire --

TEST(NetWire, Crc32KnownValue) {
  const char* s = "123456789";
  EXPECT_EQ(net::crc32(std::span(reinterpret_cast<const std::byte*>(s), 9)), 0xCBF43926u);
  EXPECT_EQ(net::crc32({}), 0u);
}

TEST(NetWire, HeaderRoundTrip) {
  net::FrameHeader h;
  h.channel = static_cast<std::uint16_t>(net::Channel::FetchOk);
  h.src = 3;
  h.dst = net::kCoordinatorId;
  h.tag = 0xDEADBEEFCAFEull;
  h.payload_len = 12345;
  h.payload_crc = 0xA5A5A5A5u;

  std::byte raw[net::kFrameHeaderBytes];
  net::encode_header(h, raw);
  const net::FrameHeader d = net::decode_header(raw);
  EXPECT_EQ(d.magic, net::kFrameMagic);
  EXPECT_EQ(d.version, net::kProtocolVersion);
  EXPECT_EQ(d.channel, h.channel);
  EXPECT_EQ(d.src, 3);
  EXPECT_EQ(d.dst, net::kCoordinatorId);
  EXPECT_EQ(d.tag, h.tag);
  EXPECT_EQ(d.payload_len, 12345u);
  EXPECT_EQ(d.payload_crc, 0xA5A5A5A5u);
}

TEST(NetWire, HeaderRejectsBadMagicVersionChannelLength) {
  net::FrameHeader h;
  h.channel = static_cast<std::uint16_t>(net::Channel::Hello);
  std::byte raw[net::kFrameHeaderBytes];

  net::encode_header(h, raw);
  raw[0] = static_cast<std::byte>(0x00);  // corrupt magic
  EXPECT_THROW((void)net::decode_header(raw), net::FrameError);

  h.version = net::kProtocolVersion + 1;
  net::encode_header(h, raw);
  EXPECT_THROW((void)net::decode_header(raw), net::FrameError);
  h.version = net::kProtocolVersion;

  h.channel = 99;  // not a Channel
  net::encode_header(h, raw);
  EXPECT_THROW((void)net::decode_header(raw), net::FrameError);
  h.channel = static_cast<std::uint16_t>(net::Channel::Hello);

  // A hostile length prefix is rejected before any allocation.
  h.payload_len = 2048;
  net::encode_header(h, raw);
  EXPECT_THROW((void)net::decode_header(raw, /*max_payload=*/1024), net::FrameError);
}

TEST(NetWire, AssemblerRoundTripCoalescedFrames) {
  const auto p1 = pattern_bytes(100);
  const auto p2 = pattern_bytes(0);
  const auto p3 = pattern_bytes(7);
  auto bytes = net::encode_frame(net::Channel::PutBlock, 1, 2, 11, p1);
  const auto f2 = net::encode_frame(net::Channel::Shutdown, 1, 2, 0, p2);
  const auto f3 = net::encode_frame(net::Channel::FetchReq, 1, 2, 13, p3);
  bytes.insert(bytes.end(), f2.begin(), f2.end());
  bytes.insert(bytes.end(), f3.begin(), f3.end());

  net::FrameAssembler a;
  a.feed(bytes);  // three frames in one read
  EXPECT_EQ(a.frames_ready(), 3u);
  EXPECT_FALSE(a.in_frame());

  net::Frame f;
  ASSERT_TRUE(a.next(f));
  EXPECT_EQ(f.channel(), net::Channel::PutBlock);
  EXPECT_EQ(f.header.tag, 11u);
  ASSERT_EQ(f.payload.size(), p1.size());
  EXPECT_EQ(std::memcmp(f.payload.data(), p1.data(), p1.size()), 0);
  ASSERT_TRUE(a.next(f));
  EXPECT_EQ(f.channel(), net::Channel::Shutdown);
  EXPECT_EQ(f.payload.size(), 0u);
  ASSERT_TRUE(a.next(f));
  EXPECT_EQ(f.channel(), net::Channel::FetchReq);
  EXPECT_EQ(f.header.tag, 13u);
  EXPECT_FALSE(a.next(f));
}

TEST(NetWire, AssemblerByteByByteReassembly) {
  const auto payload = pattern_bytes(53);
  const auto bytes = net::encode_frame(net::Channel::ExecTask, 0, 3, 99, payload);

  net::FrameAssembler a;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    a.feed({&bytes[i], 1});
    EXPECT_EQ(a.frames_ready(), 0u);
    EXPECT_TRUE(a.in_frame());
  }
  a.feed({&bytes.back(), 1});
  EXPECT_FALSE(a.in_frame());
  net::Frame f;
  ASSERT_TRUE(a.next(f));
  EXPECT_EQ(f.channel(), net::Channel::ExecTask);
  ASSERT_EQ(f.payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(f.payload.data(), payload.data(), payload.size()), 0);
}

TEST(NetWire, AssemblerLargePayloadChunkedFeed) {
  const std::size_t n = 300 * 1024;  // well past one 64 KiB socket read
  const auto payload = pattern_bytes(n);
  const auto bytes = net::encode_frame(net::Channel::FetchOk, 2, 0, 1, payload);

  net::FrameAssembler a;
  const std::size_t chunk = 4093;  // deliberately unaligned
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    a.feed({bytes.data() + off, std::min(chunk, bytes.size() - off)});
  }
  net::Frame f;
  ASSERT_TRUE(a.next(f));
  ASSERT_EQ(f.payload.size(), n);
  EXPECT_EQ(std::memcmp(f.payload.data(), payload.data(), n), 0);
}

TEST(NetWire, AssemblerDetectsCorruptPayload) {
  const auto payload = pattern_bytes(64);
  auto bytes = net::encode_frame(net::Channel::PutBlock, 0, 1, 5, payload);
  bytes[net::kFrameHeaderBytes + 10] ^= static_cast<std::byte>(0xFF);
  net::FrameAssembler a;
  EXPECT_THROW(a.feed(bytes), net::FrameError);  // CRC mismatch
}

TEST(NetWire, AssemblerRejectsOversizedLengthPrefix) {
  net::FrameHeader h;
  h.channel = static_cast<std::uint16_t>(net::Channel::PutBlock);
  h.payload_len = 1u << 20;
  std::byte raw[net::kFrameHeaderBytes];
  net::encode_header(h, raw);
  net::FrameAssembler a(/*max_payload=*/1024);
  EXPECT_THROW(a.feed(raw), net::FrameError);
}

TEST(NetWire, AssemblerReportsMidFrameStreams) {
  const auto bytes = net::encode_frame(net::Channel::TaskDone, 1, -1, 3, pattern_bytes(40));
  {
    net::FrameAssembler a;  // stopped inside the header
    a.feed({bytes.data(), 16});
    EXPECT_TRUE(a.in_frame());
  }
  {
    net::FrameAssembler a;  // stopped inside the payload
    a.feed({bytes.data(), net::kFrameHeaderBytes + 8});
    EXPECT_TRUE(a.in_frame());
    net::Frame f;
    EXPECT_FALSE(a.next(f));
  }
}

// ------------------------------------------------------------ protocol --

TEST(NetProtocol, MessageRoundTrips) {
  {
    const net::HelloMsg m{7, 4242};
    const auto d = net::HelloMsg::decode(m.encode());
    EXPECT_EQ(d.node, 7);
    EXPECT_EQ(d.os_pid, 4242u);
  }
  {
    net::PutBlockMsg m;
    m.name = "A_{1,2}";
    m.durable_elsewhere = true;
    m.bytes = pattern_buffer(129);
    const auto d = net::PutBlockMsg::decode(m.encode());
    EXPECT_EQ(d.name, "A_{1,2}");
    EXPECT_TRUE(d.durable_elsewhere);
    ASSERT_EQ(d.bytes.size(), 129u);
    EXPECT_EQ(std::memcmp(d.bytes.data(), m.bytes.data(), 129), 0);
  }
  {
    net::FetchFailMsg m{"x^3", "no such block"};
    const auto d = net::FetchFailMsg::decode(m.encode());
    EXPECT_EQ(d.name, "x^3");
    EXPECT_EQ(d.error, "no such block");
  }
  {
    net::ExecTaskMsg m;
    m.name = "x_{0,1}^2";
    m.kind = "multiply";
    m.serial_nnz_threshold = 777;
    m.inputs = {{"A_{0,1}", 4096, 1}, {"x^1_1", 512, net::kDurableOnly}};
    m.outputs = {{"x_{0,1}^2", 512}};
    const auto d = net::ExecTaskMsg::decode(m.encode());
    EXPECT_EQ(d.name, m.name);
    EXPECT_EQ(d.kind, "multiply");
    EXPECT_EQ(d.serial_nnz_threshold, 777u);
    ASSERT_EQ(d.inputs.size(), 2u);
    EXPECT_EQ(d.inputs[0].array, "A_{0,1}");
    EXPECT_EQ(d.inputs[1].home, net::kDurableOnly);
    ASSERT_EQ(d.outputs.size(), 1u);
    EXPECT_EQ(d.outputs[0].bytes, 512u);
  }
  {
    net::TaskDoneMsg m;
    m.ok = false;
    m.error = "kernel blew up";
    m.fetched_bytes = 9;
    m.durable_fallbacks = 2;
    m.exec_seconds = 0.25;
    const auto d = net::TaskDoneMsg::decode(m.encode());
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(d.error, "kernel blew up");
    EXPECT_EQ(d.fetched_bytes, 9u);
    EXPECT_EQ(d.durable_fallbacks, 2u);
    EXPECT_DOUBLE_EQ(d.exec_seconds, 0.25);
  }
  {
    net::NodeReportMsg m;
    m.os_pid = 31337;
    m.tasks_executed = 12;
    m.fetch_bytes_in = 777;
    m.fetch_p99_s = 0.125;
    m.trace_path = "/tmp/traces/node2.json";
    const auto d = net::NodeReportMsg::decode(m.encode());
    EXPECT_EQ(d.os_pid, 31337u);
    EXPECT_EQ(d.tasks_executed, 12u);
    EXPECT_EQ(d.fetch_bytes_in, 777u);
    EXPECT_DOUBLE_EQ(d.fetch_p99_s, 0.125);
    EXPECT_EQ(d.trace_path, "/tmp/traces/node2.json");
  }
}

TEST(NetProtocol, EveryTruncationThrowsTypedError) {
  net::ExecTaskMsg m;
  m.name = "task";
  m.kind = "sum";
  m.inputs = {{"a", 8, 0}, {"b", 8, 1}};
  m.outputs = {{"c", 8}};
  const DataBuffer full = m.encode();
  for (std::size_t len = 0; len < full.size(); ++len) {
    const DataBuffer cut = DataBuffer::copy_of(full.data(), len);
    EXPECT_THROW((void)net::ExecTaskMsg::decode(cut), net::FrameError) << "prefix " << len;
  }

  net::NodeReportMsg rep;
  rep.trace_path = "/t/n0.json";
  const DataBuffer rfull = rep.encode();
  for (std::size_t len = 0; len < rfull.size(); ++len) {
    const DataBuffer cut = DataBuffer::copy_of(rfull.data(), len);
    EXPECT_THROW((void)net::NodeReportMsg::decode(cut), net::FrameError) << "prefix " << len;
  }
}

TEST(NetProtocol, HostileStringLengthRejectedBeforeAllocation) {
  BinaryWriter w;
  w.put<std::uint64_t>(1ull << 40);  // claims a 1 TiB name
  w.put<std::uint8_t>('x');
  EXPECT_THROW((void)net::FetchReqMsg::decode(w.take()), net::FrameError);
}

TEST(NetProtocol, HostileElementCountsRejected) {
  {
    BinaryWriter w;  // count over the absolute element cap
    w.put_string("t");
    w.put_string("sum");
    w.put<std::uint64_t>(0);          // serial_nnz_threshold
    w.put<std::uint64_t>(1ull << 30); // inputs count
    EXPECT_THROW((void)net::ExecTaskMsg::decode(w.take()), net::FrameError);
  }
  {
    BinaryWriter w;  // plausible count, but more than the payload can hold
    w.put_string("t");
    w.put_string("sum");
    w.put<std::uint64_t>(0);
    w.put<std::uint64_t>(1000);
    w.put<std::uint64_t>(0);  // a few stray bytes, nowhere near 1000 inputs
    EXPECT_THROW((void)net::ExecTaskMsg::decode(w.take()), net::FrameError);
  }
}

// ----------------------------------------------- dataflow TransportStats --

TEST(NetTransportStats, SnapshotDeltaAndReset) {
  df::TransportStats stats(3);
  stats.record(0, 1, 100);
  stats.record(0, 1, 50);
  stats.record(1, 1, 999);  // node-local: excluded from cross-node totals
  stats.record(2, 0, 25);

  const auto s1 = stats.snapshot();
  EXPECT_EQ(s1.edge(0, 1).messages, 2u);
  EXPECT_EQ(s1.edge(0, 1).bytes, 150u);
  EXPECT_EQ(s1.bytes_sent(0), 150u);
  EXPECT_EQ(s1.bytes_received(0), 25u);
  EXPECT_EQ(s1.cross_node_bytes(), 175u);
  EXPECT_EQ(s1.cross_node_messages(), 3u);

  stats.record(0, 2, 1000);
  const auto s2 = stats.snapshot();
  const auto d = s2.delta(s1);
  EXPECT_EQ(d.cross_node_bytes(), 1000u);
  EXPECT_EQ(d.edge(0, 1).bytes, 0u);
  EXPECT_EQ(d.edge(0, 2).bytes, 1000u);

  stats.reset();
  EXPECT_EQ(stats.cross_node_bytes(), 0u);
  EXPECT_EQ(stats.snapshot().cross_node_messages(), 0u);
}

// -------------------------------------------------------------- in-proc --

TEST(NetInProc, HandshakeRoundTripAndDeepCopy) {
  net::InProcHub hub;
  auto a = hub.make_endpoint(0);
  auto b = hub.make_endpoint(1);

  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*a, net::RecvEvent::Kind::PeerUp, ev));
  EXPECT_EQ(ev.peer, 1);
  ASSERT_TRUE(wait_for(*b, net::RecvEvent::Kind::PeerUp, ev));
  EXPECT_EQ(ev.peer, 0);
  EXPECT_TRUE(a->peer_up(1));
  EXPECT_FALSE(a->peer_up(7));

  DataBuffer payload = pattern_buffer(32);
  ASSERT_TRUE(a->send(1, net::Channel::PutBlock, 42, payload));
  payload.data()[0] = static_cast<std::byte>(0xEE);  // sender-side mutation
  ASSERT_TRUE(wait_for(*b, net::RecvEvent::Kind::Frame, ev));
  EXPECT_EQ(ev.channel, net::Channel::PutBlock);
  EXPECT_EQ(ev.tag, 42u);
  const auto expect = pattern_bytes(32);
  ASSERT_EQ(ev.payload.size(), 32u);
  // Deep-copy boundary: the receiver sees the bytes as sent, not the
  // sender's later mutation.
  EXPECT_EQ(std::memcmp(ev.payload.data(), expect.data(), 32), 0);

  EXPECT_FALSE(a->send(9, net::Channel::PutBlock, 1, pattern_buffer(4)));

  const auto ca = a->counters();
  EXPECT_EQ(ca.frames_sent, 1u);
  EXPECT_EQ(ca.bytes_sent, 32u);
}

TEST(NetInProc, CloseDeliversPeerDown) {
  net::InProcHub hub;
  auto a = hub.make_endpoint(0);
  auto b = hub.make_endpoint(1);
  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*a, net::RecvEvent::Kind::PeerUp, ev));

  b->close();  // simulated node death
  ASSERT_TRUE(wait_for(*a, net::RecvEvent::Kind::PeerDown, ev));
  EXPECT_EQ(ev.peer, 1);
  EXPECT_FALSE(a->peer_up(1));
  EXPECT_FALSE(a->send(1, net::Channel::FetchReq, 1, pattern_buffer(4)));
}

// -------------------------------------------------------------- sockets --

TEST(NetSocket, UnixHandshakeFramesAndCounters) {
  testutil::TempDir dir("net_unix");
  net::NodeAddress addr;
  addr.kind = net::NodeAddress::Kind::Unix;
  addr.path = dir.str() + "/n0.sock";

  net::SocketTransportConfig scfg;
  scfg.self = 0;
  auto server = net::SocketTransport::listen(addr, scfg);

  net::SocketTransportConfig ccfg;
  ccfg.self = net::kCoordinatorId;
  auto client = net::SocketTransport::client(ccfg);
  ASSERT_TRUE(client->connect_peer(0, addr));

  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::PeerUp, ev));
  EXPECT_EQ(ev.peer, net::kCoordinatorId);
  EXPECT_EQ(ev.peer_pid, static_cast<std::uint64_t>(::getpid()));
  ASSERT_TRUE(wait_for(*client, net::RecvEvent::Kind::PeerUp, ev));
  EXPECT_EQ(ev.peer, 0);
  EXPECT_TRUE(client->peer_up(0));

  // client -> server, then server -> client.
  ASSERT_TRUE(client->send(0, net::Channel::PutBlock, 7, pattern_buffer(100)));
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::Frame, ev));
  EXPECT_EQ(ev.channel, net::Channel::PutBlock);
  EXPECT_EQ(ev.tag, 7u);
  ASSERT_EQ(ev.payload.size(), 100u);
  const auto expect = pattern_bytes(100);
  EXPECT_EQ(std::memcmp(ev.payload.data(), expect.data(), 100), 0);

  ASSERT_TRUE(server->send(net::kCoordinatorId, net::Channel::TaskDone, 7, pattern_buffer(8)));
  ASSERT_TRUE(wait_for(*client, net::RecvEvent::Kind::Frame, ev));
  EXPECT_EQ(ev.channel, net::Channel::TaskDone);

  EXPECT_FALSE(client->send(42, net::Channel::PutBlock, 1, pattern_buffer(4)));

  // Handshake frames are excluded from traffic counters.
  const auto cc = client->counters();
  EXPECT_EQ(cc.frames_sent, 1u);
  EXPECT_EQ(cc.bytes_sent, 100u);
  EXPECT_EQ(cc.frames_received, 1u);
  EXPECT_EQ(cc.bytes_received, 8u);

  client->close();
  server->close();
}

TEST(NetSocket, LargeFrameCrossesPartialReads) {
  testutil::TempDir dir("net_big");
  net::NodeAddress addr;
  addr.kind = net::NodeAddress::Kind::Unix;
  addr.path = dir.str() + "/n0.sock";

  auto server = net::SocketTransport::listen(addr, {.self = 0});
  auto client = net::SocketTransport::client({.self = net::kCoordinatorId});
  ASSERT_TRUE(client->connect_peer(0, addr));

  const std::size_t n = 300 * 1024;  // forces multiple 64 KiB reads
  ASSERT_TRUE(client->send(0, net::Channel::FetchOk, 3, pattern_buffer(n)));
  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::Frame, ev, 10000));
  ASSERT_EQ(ev.payload.size(), n);
  const auto expect = pattern_bytes(n);
  EXPECT_EQ(std::memcmp(ev.payload.data(), expect.data(), n), 0);

  client->close();
  server->close();
}

TEST(NetSocket, CleanPeerCloseSurfacesPeerDown) {
  testutil::TempDir dir("net_down");
  net::NodeAddress addr;
  addr.kind = net::NodeAddress::Kind::Unix;
  addr.path = dir.str() + "/n0.sock";

  auto server = net::SocketTransport::listen(addr, {.self = 0});
  auto client = net::SocketTransport::client({.self = net::kCoordinatorId});
  ASSERT_TRUE(client->connect_peer(0, addr));
  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::PeerUp, ev));

  client->close();
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::PeerDown, ev));
  EXPECT_EQ(ev.peer, net::kCoordinatorId);
  EXPECT_NE(ev.error.find("closed"), std::string::npos) << ev.error;
  EXPECT_FALSE(server->peer_up(net::kCoordinatorId));
  server->close();
}

TEST(NetSocket, DisconnectMidFrameReportsTruncation) {
  testutil::TempDir dir("net_trunc");
  net::NodeAddress addr;
  addr.kind = net::NodeAddress::Kind::Unix;
  addr.path = dir.str() + "/n0.sock";
  auto server = net::SocketTransport::listen(addr, {.self = 0});

  // Raw client: handshake by hand, then die inside a frame.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
  // The listener is already up; a brief retry absorbs scheduler jitter.
  int rc = -1;
  for (int i = 0; i < 50 && rc != 0; ++i) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    if (rc != 0) std::this_thread::sleep_for(20ms);
  }
  ASSERT_EQ(rc, 0);

  const net::HelloMsg hello{7, static_cast<std::uint64_t>(::getpid())};
  const DataBuffer hp = hello.encode();
  const auto hf = net::encode_frame(net::Channel::Hello, 7, 0, 0, hp.span());
  ASSERT_EQ(::send(fd, hf.data(), hf.size(), 0), static_cast<ssize_t>(hf.size()));

  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::PeerUp, ev));
  EXPECT_EQ(ev.peer, 7);

  // Drain the HelloAck; unread bytes at close() would turn the EOF into a
  // connection reset.
  {
    std::byte ack[256];
    std::size_t got = 0;
    const std::size_t want = net::kFrameHeaderBytes + hp.size();
    while (got < want) {
      const ssize_t n = ::recv(fd, ack + got, sizeof(ack) - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
  }

  // 16 bytes: half a frame header, then EOF.
  const auto partial = pattern_bytes(16);
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0), 16);
  std::this_thread::sleep_for(50ms);  // let the loop ingest the fragment
  ::close(fd);

  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::PeerDown, ev));
  EXPECT_EQ(ev.peer, 7);
  EXPECT_NE(ev.error.find("mid-frame"), std::string::npos) << ev.error;
  server->close();
}

TEST(NetSocket, HandshakeIdentityMismatchFailsConnect) {
  testutil::TempDir dir("net_mismatch");
  net::NodeAddress addr;
  addr.kind = net::NodeAddress::Kind::Unix;
  addr.path = dir.str() + "/n0.sock";
  auto server = net::SocketTransport::listen(addr, {.self = 0});
  auto client = net::SocketTransport::client({.self = net::kCoordinatorId});
  // The listener identifies as node 0; expecting node 3 must not yield a
  // ready peer.
  EXPECT_FALSE(client->connect_peer(3, addr, /*deadline_ms=*/1000));
  EXPECT_FALSE(client->peer_up(3));
  client->close();
  server->close();
}

TEST(NetSocket, TcpLoopbackRoundTrip) {
  // Derive a port from the pid to keep parallel test runs off each other.
  const int port = 7900 + static_cast<int>(::getpid() % 800);
  net::NodeAddress addr;
  addr.kind = net::NodeAddress::Kind::Tcp;
  addr.host = "127.0.0.1";
  addr.port = port;

  auto server = net::SocketTransport::listen(addr, {.self = 0});
  auto client = net::SocketTransport::client({.self = net::kCoordinatorId});
  ASSERT_TRUE(client->connect_peer(0, addr));

  ASSERT_TRUE(client->send(0, net::Channel::ReportReq, 5, DataBuffer{}));
  net::RecvEvent ev;
  ASSERT_TRUE(wait_for(*server, net::RecvEvent::Kind::Frame, ev));
  EXPECT_EQ(ev.channel, net::Channel::ReportReq);
  EXPECT_EQ(ev.tag, 5u);
  client->close();
  server->close();
}

// -------------------------------------------- in-proc cluster end-to-end --

TEST(NetCluster, InProcSpmvMatchesSingleProcessEngine) {
  testutil::TempDir durable("net_durable");
  testutil::TempDir scratch("net_scratch");

  net::InProcHub hub;
  auto coord_ep = hub.make_endpoint(net::kCoordinatorId);
  std::vector<std::unique_ptr<net::NodeServer>> servers;
  std::vector<std::thread> threads;
  const int kNodes = 2;
  for (int i = 0; i < kNodes; ++i) {
    net::NodeServerConfig scfg;
    scfg.node = i;
    scfg.durable_dir = durable.str();
    servers.push_back(std::make_unique<net::NodeServer>(hub.make_endpoint(i), scfg));
  }
  threads.reserve(servers.size());
  for (auto& s : servers) threads.emplace_back([&s] { s->run(); });

  net::CoordinatorConfig ccfg;
  ccfg.num_nodes = kNodes;
  ccfg.durable_dir = durable.str();
  net::Coordinator coord(*coord_ep, ccfg);

  net::SpmvJobConfig jcfg;
  jcfg.n = 256;
  jcfg.grid_k = 2;
  jcfg.iterations = 2;
  jcfg.num_nodes = kNodes;
  const net::SpmvJob job(jcfg);
  job.deploy(coord);
  const auto driver = job.build_graph();
  const net::RunResult run = coord.run(driver->graph());
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.tasks_executed, run.tasks_total);
  EXPECT_TRUE(run.dead_nodes.empty());

  const std::vector<double> wire = job.gather(coord);
  const std::vector<double> expect = job.reference(scratch.str());
  ASSERT_EQ(wire.size(), expect.size());
  EXPECT_EQ(std::memcmp(wire.data(), expect.data(), wire.size() * sizeof(double)), 0)
      << "wire backend result is not bitwise identical";

  coord.shutdown_cluster();
  for (auto& t : threads) t.join();
  coord_ep->close();
}

}  // namespace
}  // namespace dooc
