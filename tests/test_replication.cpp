// Hot-block replication: config grammar, decayed heat arithmetic,
// rendezvous replica ranking, 2Q eviction behavior, the end-to-end replica
// flow through StorageCluster, write-once coherence on the resurrection
// path, and the deterministic DES replay of the same policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "simcluster/testbed.hpp"
#include "storage/replication.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc::storage {
namespace {

// ---------------------------------------------------------------------------
// DOOC_REPLICATION grammar
// ---------------------------------------------------------------------------

TEST(ReplicationConfig, Defaults) {
  const ReplicationConfig cfg = ReplicationConfig::parse("");
  EXPECT_FALSE(cfg.enabled);
  EXPECT_EQ(cfg.hot_threshold, 4u);
  EXPECT_EQ(cfg.max_replicas, 3);
  EXPECT_EQ(cfg.decay, 64u);
}

TEST(ReplicationConfig, FullSpec) {
  const ReplicationConfig cfg =
      ReplicationConfig::parse("on,hot_threshold=2,max_replicas=1,decay=16");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.hot_threshold, 2u);
  EXPECT_EQ(cfg.max_replicas, 1);
  EXPECT_EQ(cfg.decay, 16u);
}

TEST(ReplicationConfig, BareTokenAndModeKey) {
  EXPECT_TRUE(ReplicationConfig::parse("on").enabled);
  EXPECT_FALSE(ReplicationConfig::parse("off").enabled);
  EXPECT_TRUE(ReplicationConfig::parse("1").enabled);
  EXPECT_TRUE(ReplicationConfig::parse("mode=on").enabled);
  EXPECT_FALSE(ReplicationConfig::parse("mode=off").enabled);
  // Trailing / doubled commas are harmless (mirrors DOOC_CODEC).
  EXPECT_TRUE(ReplicationConfig::parse("on,").enabled);
  EXPECT_TRUE(ReplicationConfig::parse("on,,decay=8").enabled);
}

TEST(ReplicationConfig, HostileInputsThrow) {
  const char* bad[] = {
      "banana",                        // unknown bare token
      "on,banana",                     // bare token past position 0
      "off,on",                        // ditto
      "hot_threshold=0",               // below range
      "hot_threshold=x",               // not a number
      "hot_threshold=",                // empty value
      "hot_threshold=3x",              // trailing junk
      "hot_threshold=99999999999999999999",  // ERANGE
      "max_replicas=0",                // below range
      "max_replicas=5000",             // above range
      "decay=0",                       // below range
      "decay=-1",                      // negative
      "mode=maybe",                    // not on/off
      "=5",                            // empty key
      "replicas=2",                    // unknown key
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)ReplicationConfig::parse(spec), InvalidArgument) << "spec: " << spec;
  }
}

// ---------------------------------------------------------------------------
// HeatTracker: decayed counters under virtual (access-count) epochs
// ---------------------------------------------------------------------------

TEST(HeatTracker, CountsRampThenHalveAcrossEpochs) {
  replication::HeatTracker heat(4);  // epoch = one per 4 accesses
  const BlockKey a{"a", 0};
  const BlockKey b{"b", 0};
  // Accesses 0..3 land in epoch 0: the counter ramps 1,2,3,4.
  for (std::uint32_t want = 1; want <= 4; ++want) EXPECT_EQ(heat.record(a), want);
  // The 4th access already moved the clock to epoch 1, so a peek sees the
  // epoch-0 count halved once: 4 >> 1 == 2.
  EXPECT_EQ(heat.peek(a), 2u);
  // Four more accesses (of another key) advance to epoch 1...
  for (int i = 0; i < 4; ++i) heat.record(b);
  // ...and peeking at epoch 2 halves a's epoch-0 count twice: 4 >> 2 == 1.
  EXPECT_EQ(heat.peek(a), 1u);
  // b's count (4, stamped in epoch 1) has halved once: 4 >> 1 == 2.
  EXPECT_EQ(heat.peek(b), 2u);
}

TEST(HeatTracker, LongIdlenessZeroesTheCounter) {
  replication::HeatTracker heat(1);  // every access is its own epoch
  const BlockKey a{"a", 0};
  for (int i = 0; i < 40; ++i) heat.record(a);
  const BlockKey other{"b", 0};
  for (int i = 0; i < 40; ++i) heat.record(other);  // 40 epochs pass for a
  EXPECT_EQ(heat.peek(a), 0u);  // shift >= 32 clamps to zero, no UB
}

TEST(HeatTracker, ForgetDropsKeysAndArrays) {
  replication::HeatTracker heat(1024);
  heat.record({"m", 0});
  heat.record({"m", 1});
  heat.record({"v", 0});
  heat.forget({"m", 0});
  EXPECT_EQ(heat.peek({"m", 0}), 0u);
  EXPECT_EQ(heat.peek({"m", 1}), 1u);
  heat.forget_array("m");
  EXPECT_EQ(heat.peek({"m", 1}), 0u);
  EXPECT_EQ(heat.peek({"v", 0}), 1u);
}

// ---------------------------------------------------------------------------
// Rendezvous replica ranking
// ---------------------------------------------------------------------------

TEST(RankHolders, DeterministicPermutationWithoutRequester) {
  const BlockKey key{"m.blk", 7};
  const std::vector<int> holders{0, 1, 2, 3, 4};
  const auto r1 = replication::rank_holders(key, 2, holders);
  const auto r2 = replication::rank_holders(key, 2, holders);
  EXPECT_EQ(r1, r2);  // pure function of (key, requester, holders)
  EXPECT_EQ(r1.size(), 4u);
  EXPECT_TRUE(std::find(r1.begin(), r1.end(), 2) == r1.end());
  auto sorted = r1;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 3, 4}));
}

TEST(RankHolders, SpreadsRequestersAcrossHolders) {
  const std::vector<int> holders{0, 1, 2, 3};
  std::set<int> first_choices;
  for (int requester = 100; requester < 116; ++requester) {
    first_choices.insert(replication::rank_holders({"m", 3}, requester, holders)[0]);
  }
  // 16 requesters should not all pile onto one holder.
  EXPECT_GT(first_choices.size(), 1u);
}

// ---------------------------------------------------------------------------
// 2Q eviction on a real node
// ---------------------------------------------------------------------------

StorageConfig small_config(const testutil::TempDir& dir) {
  StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 16 * 4096;
  cfg.default_block_size = 4096;
  cfg.io_workers = 2;
  return cfg;
}

void import_array(StorageNode& node, const std::string& name, std::uint64_t bytes,
                  std::uint64_t fill) {
  const std::string path = node.scratch_dir() + "/" + name + ".src";
  std::vector<std::uint64_t> vals(bytes / 8, fill);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(vals.data()), static_cast<std::streamsize>(bytes));
  }
  node.import_file(name, path, 4096);
}

TEST(TwoQEviction, HotBlockSurvivesScanThatEvictsUnderLru) {
  for (const bool two_q : {true, false}) {
    testutil::TempDir dir(two_q ? "2q" : "lru");
    StorageConfig cfg = small_config(dir);
    cfg.eviction = two_q ? EvictionPolicy::TwoQ : EvictionPolicy::Lru;
    StorageCluster cluster(1, cfg);
    auto& node = cluster.node(0);

    import_array(node, "hot", 4096, 7);
    // Load it, then re-reference it from cache: under 2Q the second read
    // promotes the block into the protected class.
    (void)node.request_read({"hot", 0, 4096}).get();
    (void)node.request_read({"hot", 0, 4096}).get();

    // Scan 32 cold arrays through a 16-block budget — enough pressure to
    // push the oldest resident block out under pure LRU.
    for (int i = 0; i < 32; ++i) {
      const std::string name = "cold" + std::to_string(i);
      import_array(node, name, 4096, static_cast<std::uint64_t>(i));
      (void)node.request_read({name, 0, 4096}).get();
    }

    if (two_q) {
      EXPECT_TRUE(node.is_resident({"hot", 0, 4096}))
          << "2Q must protect the re-referenced block from a one-shot scan";
    } else {
      EXPECT_FALSE(node.is_resident({"hot", 0, 4096}))
          << "under LRU the scan is expected to flush the hot block "
             "(otherwise the 2Q half of this test proves nothing)";
    }
    EXPECT_GE(node.stats().evictions, 1u);
  }
}

TEST(TwoQEviction, ReplicationOnUpgradesDefaultLruToTwoQ) {
  testutil::TempDir dir("up");
  StorageConfig cfg = small_config(dir);
  cfg.replication = ReplicationConfig::parse("on");
  StorageCluster cluster(1, cfg);
  EXPECT_TRUE(cluster.node(0).replication().enabled);
  // Behavioral check: the re-referenced block survives the scan, which
  // only the 2Q policy provides.
  auto& node = cluster.node(0);
  import_array(node, "hot", 4096, 7);
  (void)node.request_read({"hot", 0, 4096}).get();
  (void)node.request_read({"hot", 0, 4096}).get();
  for (int i = 0; i < 32; ++i) {
    const std::string name = "cold" + std::to_string(i);
    import_array(node, name, 4096, static_cast<std::uint64_t>(i));
    (void)node.request_read({name, 0, 4096}).get();
  }
  EXPECT_TRUE(node.is_resident({"hot", 0, 4096}));
}

// ---------------------------------------------------------------------------
// End-to-end replica flow
// ---------------------------------------------------------------------------

TEST(Replication, HotDurableBlockServesReadersFromPeerMemory) {
  testutil::TempDir dir("flow");
  StorageConfig cfg = small_config(dir);
  cfg.memory_budget = 1ull << 20;
  // decay is huge so the tiny access counts in this test never halve.
  cfg.replication = ReplicationConfig::parse("on,hot_threshold=1,decay=1048576");
  StorageCluster cluster(3, cfg);

  import_array(cluster.node(0), "m", 4096, 42);
  auto r1 = cluster.node(1).request_read({"m", 0, 4096}).get();
  EXPECT_EQ(r1.as<std::uint64_t>()[0], 42u);
  auto r2 = cluster.node(2).request_read({"m", 0, 4096}).get();
  EXPECT_EQ(r2.as<std::uint64_t>()[0], 42u);

  const StorageStats total = cluster.total_stats();
  EXPECT_GE(total.replica_promotions, 1u) << "threshold=1 promotes on first fetch";
  EXPECT_GE(total.replica_hits, 1u)
      << "the second reader must be served from a peer's in-memory replica";
}

TEST(Replication, MaxReplicasCapInstallsTransientCopies) {
  testutil::TempDir dir("cap");
  StorageConfig cfg = small_config(dir);
  cfg.memory_budget = 1ull << 20;
  cfg.replication = ReplicationConfig::parse("on,hot_threshold=1,max_replicas=1,decay=1048576");
  StorageCluster cluster(3, cfg);

  import_array(cluster.node(0), "m", 4096, 9);
  (void)cluster.node(1).request_read({"m", 0, 4096}).get();
  auto r = cluster.node(2).request_read({"m", 0, 4096}).get();
  EXPECT_EQ(r.as<std::uint64_t>()[0], 9u);  // bypass copies still serve reads
  EXPECT_GE(cluster.total_stats().replica_bypass, 1u)
      << "past the cap, fetched copies must install transient (unlisted)";
}

TEST(Replication, OffKeepsCountersAtZero) {
  testutil::TempDir dir("off");
  StorageConfig cfg = small_config(dir);
  cfg.memory_budget = 1ull << 20;
  cfg.replication = ReplicationConfig{};  // explicit off beats any env var
  StorageCluster cluster(2, cfg);
  import_array(cluster.node(0), "m", 4096, 5);
  (void)cluster.node(1).request_read({"m", 0, 4096}).get();
  const StorageStats total = cluster.total_stats();
  EXPECT_EQ(total.replica_hits, 0u);
  EXPECT_EQ(total.replica_promotions, 0u);
  EXPECT_EQ(total.replica_bypass, 0u);
}

// ---------------------------------------------------------------------------
// Write-once coherence: resurrection must invalidate every replica
// ---------------------------------------------------------------------------

TEST(Replication, ResurrectionInvalidatesReplicasEverywhere) {
  testutil::TempDir dir("resur");
  StorageConfig cfg = small_config(dir);
  cfg.memory_budget = 1ull << 20;
  cfg.replication = ReplicationConfig::parse("on,hot_threshold=1,decay=1048576");
  StorageCluster cluster(2, cfg);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  n0.create_array("x", 64, 64);
  {
    auto w = n0.request_write({"x", 0, 64}).get();
    w.as<double>()[0] = 1.5;
    w.release();
  }
  // Reader on node 1 pulls a replica of the pre-fault bytes.
  EXPECT_DOUBLE_EQ(n1.request_read({"x", 0, 64}).get().as<double>()[0], 1.5);

  // Resurrection path: drop every copy cluster-wide and reset the block to
  // unwritten, exactly what ExecutorCore does before re-running a producer.
  ASSERT_TRUE(cluster.forget_block({"x", 0}));

  {
    auto w = n0.request_write({"x", 0, 64}).get();
    w.as<double>()[0] = 9.25;
    w.release();
  }
  // The reader must see the re-produced bytes — a stale replica serving
  // 1.5 here is precisely the coherence bug this path guards against.
  EXPECT_DOUBLE_EQ(n1.request_read({"x", 0, 64}).get().as<double>()[0], 9.25);
}

// ---------------------------------------------------------------------------
// DES replay
// ---------------------------------------------------------------------------

TEST(ReplicationSim, DeterministicAndNoSlowerThanBaseline) {
  sim::TestbedExperiment e;
  e.nodes = 1;

  sim::SimResources off;
  off.bw_noise = 0.0;  // isolate the eviction-policy change from noise draws
  const auto base = sim::run_testbed(e, off);
  EXPECT_EQ(base.metrics.replica_hits, 0u);
  EXPECT_EQ(base.metrics.hot_promotions, 0u);
  EXPECT_EQ(base.metrics.refetch_flows, 0u);

  sim::SimResources on = off;
  on.replication = ReplicationConfig::parse("on,hot_threshold=2,decay=1048576");
  const auto r1 = sim::run_testbed(e, on);
  const auto r2 = sim::run_testbed(e, on);

  // Bitwise-deterministic replay: virtual epochs only, no wall clock.
  EXPECT_EQ(r1.metrics.makespan, r2.metrics.makespan);
  EXPECT_EQ(r1.metrics.replica_hits, r2.metrics.replica_hits);
  EXPECT_EQ(r1.metrics.hot_promotions, r2.metrics.hot_promotions);
  EXPECT_EQ(r1.metrics.refetch_flows, r2.metrics.refetch_flows);
  EXPECT_EQ(r1.metrics.disk_bytes, r2.metrics.disk_bytes);

  // 4 iterations over a 100 GB matrix against 20 GB of memory: blocks are
  // re-read every sweep, so heat crosses the threshold and re-fetches of
  // previously resident arrays are observed.
  EXPECT_GT(r1.metrics.hot_promotions, 0u);
  EXPECT_GT(r1.metrics.replica_hits, 0u);
  EXPECT_GT(r1.metrics.refetch_flows, 0u);

  // The frequency-aware policy must not regress the modeled makespan.
  EXPECT_LE(r1.metrics.makespan, base.metrics.makespan * 1.001);
}

}  // namespace
}  // namespace dooc::storage
