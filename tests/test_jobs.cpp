// dooc::jobs — the multi-tenant job runtime, end to end:
//   * array namespacing: two identical graphs submitted concurrently get
//     disjoint `j<id>.` block namespaces (the alias regression);
//   * a single job through the JobManager matches Engine::run exactly;
//   * admission control: active/queued limits, AdmissionError, the
//     on-job-done pump, and the DOOC_JOBS grammar;
//   * concurrent jobs on the real engine under a shared inflight-load
//     budget (per-job fair-share admission in the storage layer);
//   * the DES multi-job replay: fairness (Jain index), deferred-fetch
//     accounting under a budget, and the sustained-overload property that
//     every job completes.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "jobs/job_manager.hpp"
#include "sched/engine.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/array_creator.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

using storage::Interval;

sched::Task make_task(std::string name, std::vector<Interval> in, std::vector<Interval> out) {
  sched::Task t;
  t.name = std::move(name);
  t.kind = "test";
  t.inputs = std::move(in);
  t.outputs = std::move(out);
  return t;
}

storage::StorageConfig base_config(const testutil::TempDir& dir) {
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  return cfg;
}

std::uint64_t read_u64(storage::StorageCluster& cluster, int node, const std::string& array) {
  auto r = cluster.node(node).request_read({array, 0, 8}).get();
  return r.as<std::uint64_t>()[0];
}

// ---------------------------------------------------------------------------
// Namespacing primitives
// ---------------------------------------------------------------------------

TEST(JobNamespace, PrefixesUseTheDotSeparator) {
  EXPECT_EQ(jobs::job_array_prefix(3), "j3.");
  EXPECT_EQ(jobs::namespaced(12, "x^1"), "j12.x^1");
}

TEST(JobNamespace, RenameArraysKeepsGeometryAndEdges) {
  sched::TaskGraph g;
  const sched::TaskId a = g.add(make_task("a", {}, {{"x", 0, 8}}));
  const sched::TaskId b = g.add(make_task("b", {{"x", 0, 8}}, {{"y", 8, 8}}));
  g.build();
  g.rename_arrays([](const std::string& name) { return jobs::namespaced(1, name); });

  EXPECT_EQ(g.task(a).outputs[0].array, "j1.x");
  EXPECT_EQ(g.task(b).inputs[0].array, "j1.x");
  EXPECT_EQ(g.task(b).outputs[0].offset, 8u) << "geometry is untouched";
  ASSERT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.successors(a)[0], b);
  EXPECT_EQ(g.writer_of({"j1.x", 0, 8}), a) << "the writer index follows the rename";
  EXPECT_EQ(g.writer_of({"j1.y", 8, 8}), b);
}

// ---------------------------------------------------------------------------
// DOOC_JOBS grammar
// ---------------------------------------------------------------------------

TEST(JobManagerConfigTest, ParsesTheGrammar) {
  const auto cfg = jobs::JobManagerConfig::parse("active=2,queued=8");
  EXPECT_EQ(cfg.max_active, 2);
  EXPECT_EQ(cfg.max_queued, 8);

  const auto defaults = jobs::JobManagerConfig::parse("");
  EXPECT_EQ(defaults.max_active, 0) << "absent keys mean unlimited";
  EXPECT_EQ(defaults.max_queued, 0);

  const auto spaced = jobs::JobManagerConfig::parse(" queued=3 , active=1 ");
  EXPECT_EQ(spaced.max_active, 1);
  EXPECT_EQ(spaced.max_queued, 3);
}

TEST(JobManagerConfigTest, RejectsMalformedSpecs) {
  EXPECT_THROW((void)jobs::JobManagerConfig::parse("active"), InvalidArgument);
  EXPECT_THROW((void)jobs::JobManagerConfig::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW((void)jobs::JobManagerConfig::parse("active=two"), InvalidArgument);
  EXPECT_THROW((void)jobs::JobManagerConfig::parse("active=2x"), InvalidArgument);
  EXPECT_THROW((void)jobs::JobManagerConfig::parse("active=-1"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The alias regression: two identical graphs, concurrently
// ---------------------------------------------------------------------------

TEST(JobManagerTest, ConcurrentIdenticalGraphsDoNotAliasBlocks) {
  testutil::TempDir dir("jobs_alias");
  storage::StorageCluster cluster(1, base_config(dir));
  // The shared template arrays both graphs name. Without namespacing the
  // two jobs would write the very same blocks (a write-once violation).
  cluster.node(0).create_array("shared_out", 8, 8);
  cluster.node(0).create_array("shared_sq", 8, 8);

  std::promise<void> gate;
  std::shared_future<void> go = gate.get_future().share();
  const auto make_graph = [&](sched::TaskGraph& g, std::uint64_t value) {
    sched::Task w = make_task("w", {}, {{"shared_out", 0, 8}});
    w.work = [go, value](sched::TaskContext& ctx) {
      go.wait();  // hold both jobs in flight simultaneously
      ctx.output(0).as<std::uint64_t>()[0] = value;
    };
    g.add(std::move(w));
    sched::Task r = make_task("r", {{"shared_out", 0, 8}}, {{"shared_sq", 0, 8}});
    r.work = [](sched::TaskContext& ctx) {
      const std::uint64_t v = ctx.input(0).as<std::uint64_t>()[0];
      ctx.output(0).as<std::uint64_t>()[0] = v * v;
    };
    g.add(std::move(r));
    g.build();
  };
  sched::TaskGraph g1, g2;
  make_graph(g1, 111);
  make_graph(g2, 222);

  sched::EngineConfig ecfg;
  ecfg.compute_slots_per_node = 2;  // both gated writers need a slot at once
  sched::Engine engine(cluster, ecfg);
  jobs::JobManager jm(cluster, engine);
  jobs::JobOptions opts;
  opts.namespace_arrays = true;
  const jobs::JobId id1 = jm.submit(g1, opts);
  const jobs::JobId id2 = jm.submit(g2, opts);
  EXPECT_NE(id1, id2);
  // The rename is visible as soon as submit returns.
  EXPECT_EQ(g1.task(0).outputs[0].array, jobs::namespaced(id1, "shared_out"));
  EXPECT_EQ(g2.task(0).outputs[0].array, jobs::namespaced(id2, "shared_out"));
  EXPECT_EQ(g1.task(1).inputs[0].array, jobs::namespaced(id1, "shared_out"))
      << "reads of job-written arrays follow the writer into the namespace";

  gate.set_value();
  const sched::Report r1 = jm.await(id1);
  const sched::Report r2 = jm.await(id2);
  EXPECT_EQ(r1.tasks_executed, 2u);
  EXPECT_EQ(r2.tasks_executed, 2u);

  // Disjoint blocks, each job's values intact.
  EXPECT_EQ(read_u64(cluster, 0, jobs::namespaced(id1, "shared_out")), 111u);
  EXPECT_EQ(read_u64(cluster, 0, jobs::namespaced(id2, "shared_out")), 222u);
  EXPECT_EQ(read_u64(cluster, 0, jobs::namespaced(id1, "shared_sq")), 111u * 111u);
  EXPECT_EQ(read_u64(cluster, 0, jobs::namespaced(id2, "shared_sq")), 222u * 222u);
}

// ---------------------------------------------------------------------------
// Single-job parity: the manager adds policy, not behaviour
// ---------------------------------------------------------------------------

TEST(JobManagerTest, SingleJobThroughTheManagerMatchesEngineRun) {
  const auto build = [](storage::StorageCluster& cluster, sched::TaskGraph& g) {
    cluster.node(0).create_array("p_a", 8, 8);
    cluster.node(0).create_array("p_b", 8, 8);
    sched::Task w = make_task("w", {}, {{"p_a", 0, 8}});
    w.work = [](sched::TaskContext& ctx) { ctx.output(0).as<std::uint64_t>()[0] = 7; };
    g.add(std::move(w));
    sched::Task r = make_task("r", {{"p_a", 0, 8}}, {{"p_b", 0, 8}});
    r.work = [](sched::TaskContext& ctx) {
      ctx.output(0).as<std::uint64_t>()[0] = 2 * ctx.input(0).as<std::uint64_t>()[0];
    };
    g.add(std::move(r));
    g.build();
  };

  testutil::TempDir dir_run("jobs_parity_run");
  storage::StorageCluster c_run(2, base_config(dir_run));
  sched::TaskGraph g_run;
  build(c_run, g_run);
  sched::Engine e_run(c_run, {});
  const sched::Report via_run = e_run.run(g_run);

  testutil::TempDir dir_jm("jobs_parity_jm");
  storage::StorageCluster c_jm(2, base_config(dir_jm));
  sched::TaskGraph g_jm;
  build(c_jm, g_jm);
  sched::Engine e_jm(c_jm, {});
  jobs::JobManager jm(c_jm, e_jm);
  const sched::Report via_jm = jm.await(jm.submit(g_jm));

  EXPECT_EQ(via_jm.tasks_executed, via_run.tasks_executed);
  EXPECT_EQ(via_jm.assignment, via_run.assignment);
  EXPECT_EQ(read_u64(c_jm, 0, "p_a"), read_u64(c_run, 0, "p_a"));
  EXPECT_EQ(read_u64(c_jm, 0, "p_b"), read_u64(c_run, 0, "p_b"));
  EXPECT_EQ(read_u64(c_jm, 0, "p_b"), 14u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(JobManagerTest, AdmissionLimitsQueueThenReject) {
  testutil::TempDir dir("jobs_admit");
  storage::StorageCluster cluster(1, base_config(dir));
  std::promise<void> gate;
  std::shared_future<void> go = gate.get_future().share();
  const auto writer_graph = [&](sched::TaskGraph& g, const std::string& array, bool gated) {
    cluster.node(0).create_array(array, 8, 8);
    sched::Task w = make_task("w", {}, {{array, 0, 8}});
    w.work = [go, gated](sched::TaskContext& ctx) {
      if (gated) go.wait();
      ctx.output(0).as<std::uint64_t>()[0] = 5;
    };
    g.add(std::move(w));
    g.build();
  };
  sched::TaskGraph ga, gb, gc;
  writer_graph(ga, "q_a", /*gated=*/true);
  writer_graph(gb, "q_b", /*gated=*/false);
  writer_graph(gc, "q_c", /*gated=*/false);

  sched::Engine engine(cluster, {});
  jobs::JobManagerConfig jcfg;
  jcfg.max_active = 1;
  jcfg.max_queued = 1;
  jobs::JobManager jm(cluster, engine, jcfg);

  const jobs::JobId id_a = jm.submit(ga);  // dispatched, parked on the gate
  const jobs::JobId id_b = jm.submit(gb);  // queued behind it
  EXPECT_EQ(jm.state(id_a), jobs::JobState::Running);
  EXPECT_EQ(jm.state(id_b), jobs::JobState::Queued);
  EXPECT_EQ(jm.active_count(), 1u);
  EXPECT_EQ(jm.queued_count(), 1u);

  EXPECT_THROW((void)jm.submit(gc), jobs::AdmissionError);
  EXPECT_EQ(jm.rejected_count(), 1u);

  gate.set_value();
  EXPECT_EQ(jm.await(id_a).tasks_executed, 1u);
  EXPECT_EQ(jm.await(id_b).tasks_executed, 1u) << "the on-done pump dispatches the queue";
  EXPECT_EQ(jm.state(id_a), jobs::JobState::Unknown) << "awaited jobs are reaped";
  EXPECT_EQ(jm.active_count(), 0u);
  EXPECT_EQ(read_u64(cluster, 0, "q_a"), 5u);
  EXPECT_EQ(read_u64(cluster, 0, "q_b"), 5u);
}

// ---------------------------------------------------------------------------
// Concurrent jobs on the real engine under a shared inflight-load budget
// ---------------------------------------------------------------------------

void import_blocks(storage::StorageNode& node, const std::string& name, int blocks,
                   std::uint64_t block_bytes) {
  const std::string path = node.scratch_dir() + "/" + name + ".bin";
  std::ofstream out(path, std::ios::binary);
  std::vector<char> data(static_cast<std::size_t>(blocks) * block_bytes, 'z');
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  node.import_file(name, path, block_bytes);
}

TEST(EngineMultiJob, ConcurrentJobsShareTheInflightBudgetCorrectly) {
  constexpr std::uint64_t kBlock = 64 * 1024;
  testutil::TempDir dir("jobs_budget");
  storage::StorageConfig cfg = base_config(dir);
  cfg.memory_budget = 16ull << 20;
  cfg.default_block_size = 4096;
  // One block in flight at a time: every further load queues through the
  // per-job WDRR arbiter, so two jobs genuinely contend for admission.
  cfg.max_inflight_load_bytes = kBlock;
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  import_blocks(node, "ma", 8, kBlock);
  import_blocks(node, "mb", 8, kBlock);

  const auto reader_graph = [&](sched::TaskGraph& g, const std::string& src,
                                const std::string& out_prefix) {
    for (int i = 0; i < 8; ++i) {
      const std::string out = out_prefix + std::to_string(i);
      node.create_array(out, 8, 8);
      sched::Task t = make_task(out, {{src, static_cast<std::uint64_t>(i) * kBlock, 1024}},
                                {{out, 0, 8}});
      t.seq = i;
      t.work = [](sched::TaskContext& ctx) {
        ctx.output(0).as<std::uint64_t>()[0] = static_cast<std::uint64_t>(ctx.input(0).bytes()[0]);
      };
      g.add(std::move(t));
    }
    g.build();
  };
  sched::TaskGraph ga, gb;
  reader_graph(ga, "ma", "bud_a");
  reader_graph(gb, "mb", "bud_b");

  sched::EngineConfig ecfg;
  ecfg.compute_slots_per_node = 2;
  ecfg.prefetch_window = 4;  // park several loads so admission actually queues
  sched::Engine engine(cluster, ecfg);
  sched::SubmitOptions oa;
  oa.weight = 2.0;
  sched::SubmitOptions ob;
  ob.priority = 1;
  const auto id_a = engine.submit(ga, oa);
  const auto id_b = engine.submit(gb, ob);
  const sched::Report ra = engine.await(id_a);
  const sched::Report rb = engine.await(id_b);

  EXPECT_EQ(ra.tasks_executed, 8u);
  EXPECT_EQ(rb.tasks_executed, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(read_u64(cluster, 0, "bud_a" + std::to_string(i)), static_cast<std::uint64_t>('z'));
    EXPECT_EQ(read_u64(cluster, 0, "bud_b" + std::to_string(i)), static_cast<std::uint64_t>('z'));
  }
}

// ---------------------------------------------------------------------------
// The DES replay: fairness and the overload-liveness property
// ---------------------------------------------------------------------------

/// A job of `tasks` independent reads of the shared durable inputs, each
/// writing one private (namespaced) intermediate.
sched::TaskGraph make_sim_job(int jid, int tasks, solver::VirtualArrayCreator& creator,
                              std::uint64_t bytes) {
  sched::TaskGraph g;
  for (int i = 0; i < tasks; ++i) {
    const std::string out = jobs::namespaced(static_cast<jobs::JobId>(jid),
                                             "o" + std::to_string(i));
    creator.create(out, bytes, i % 2);
    sched::Task t;
    t.name = "j" + std::to_string(jid) + ".t" + std::to_string(i);
    t.kind = "multiply";
    t.inputs = {{"m" + std::to_string(i % 4), 0, bytes}};
    t.outputs = {{out, 0, bytes}};
    t.est_flops = 5e8;
    t.seq = i;
    g.add(std::move(t));
  }
  g.build();
  return g;
}

TEST(SimMultiJob, JainIndexComputesTheTextbookValues) {
  using sim::MultiJobMetrics;
  EXPECT_DOUBLE_EQ(MultiJobMetrics::jain({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(MultiJobMetrics::jain({3.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MultiJobMetrics::jain({}), 1.0) << "no jobs: trivially fair";
}

TEST(SimMultiJob, EqualTenantsFinishFairlyUnderABudget) {
  constexpr std::uint64_t kArray = 32ull << 20;
  solver::VirtualArrayCreator creator;
  for (int i = 0; i < 4; ++i) creator.add_durable("m" + std::to_string(i), kArray, i % 2);
  std::deque<sched::TaskGraph> graphs;
  std::vector<sim::SimJob> submit;
  for (int j = 0; j < 3; ++j) {
    graphs.push_back(make_sim_job(j, 4, creator, kArray));
    submit.push_back({&graphs.back(), /*arrival=*/0.0, /*weight=*/1.0, /*priority=*/0});
  }

  sim::SimResources res;
  res.inflight_load_budget = kArray;  // one fetch per node at a time
  sim::SimEngine sim(2, res, creator.arrays());
  const sim::MultiJobMetrics m = sim.run_jobs(submit);

  ASSERT_EQ(m.jobs.size(), 3u);
  std::vector<double> latencies;
  for (const auto& j : m.jobs) {
    EXPECT_GT(j.finish, 0.0);
    EXPECT_GT(j.latency, 0.0);
    EXPECT_EQ(j.tasks, 4u);
    latencies.push_back(j.latency);
  }
  EXPECT_GT(m.deferred_fetches, 0u) << "a one-fetch budget must queue someone";
  EXPECT_GE(sim::MultiJobMetrics::jain(latencies), 0.9)
      << "equal-weight tenants at saturation share the budget fairly";
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_GT(m.disk_bytes, 0u);
}

TEST(SimMultiJob, SustainedOverloadStillCompletesEveryJob) {
  constexpr std::uint64_t kArray = 32ull << 20;
  solver::VirtualArrayCreator creator;
  for (int i = 0; i < 4; ++i) creator.add_durable("m" + std::to_string(i), kArray, i % 2);
  std::deque<sched::TaskGraph> graphs;
  std::vector<sim::SimJob> submit;
  // Eight jobs with skewed weights and priorities arriving faster than the
  // budget can serve them: the aging guard must keep the light, low-priority
  // tenants progressing.
  for (int j = 0; j < 8; ++j) {
    graphs.push_back(make_sim_job(j, 3, creator, kArray));
    submit.push_back({&graphs.back(), /*arrival=*/0.02 * j, /*weight=*/1.0 + (j % 3),
                      /*priority=*/j % 2});
  }

  sim::SimResources res;
  res.inflight_load_budget = kArray;
  sim::SimEngine sim(2, res, creator.arrays());
  const sim::MultiJobMetrics m = sim.run_jobs(submit);

  ASSERT_EQ(m.jobs.size(), 8u);
  for (const auto& j : m.jobs) {
    EXPECT_GE(j.finish, j.arrival) << "job " << j.job;
    EXPECT_GT(j.latency, 0.0) << "job " << j.job << " must complete under overload";
    EXPECT_EQ(j.tasks, 3u);
  }
  EXPECT_GT(m.deferred_fetches, 0u);
  EXPECT_GT(m.makespan, 0.0);
}

}  // namespace
}  // namespace dooc
