// Integration tests: the iterated-SpMV driver on the full stack
// (storage + hierarchical scheduler + engine), checked against a dense
// in-memory reference.
#include <gtest/gtest.h>

#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"
#include "test_util.hpp"

namespace dooc::solver {
namespace {

using spmv::BlockGrid;
using spmv::CsrMatrix;

struct Scenario {
  int nodes;
  int k;
  int iterations;
  ReductionMode mode;
  sched::LocalPolicy policy;
  bool inter_sync;
};

std::vector<double> reference_iterate(const CsrMatrix& m, std::vector<double> x, int iters) {
  std::vector<double> y(m.rows);
  for (int i = 0; i < iters; ++i) {
    m.multiply(x, y);
    x = y;
  }
  return x;
}

class IteratedSpmvCorrectness : public ::testing::TestWithParam<Scenario> {};

TEST_P(IteratedSpmvCorrectness, MatchesDenseReference) {
  const Scenario s = GetParam();
  testutil::TempDir dir("itspmv");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 64ull << 20;
  df::TransportStats transport(s.nodes);
  storage::StorageCluster cluster(s.nodes, cfg, &transport);

  const std::uint64_t n = 96;
  CsrMatrix m = spmv::generate_uniform_gap(n, n, 2.0, 31337);
  // Scale to keep iterates in a sane numeric range.
  for (auto& v : m.values) v *= 0.1;

  const auto owner = spmv::column_strip_owner(s.nodes);
  const auto deployed = spmv::deploy_matrix(cluster, m, s.k, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 0.01 * static_cast<double>(i); });

  IteratedSpmvConfig config;
  config.iterations = s.iterations;
  config.mode = s.mode;
  config.inter_iteration_sync = s.inter_sync;
  IteratedSpmv driver(cluster, deployed, config);

  sched::EngineConfig ecfg;
  ecfg.local_policy = s.policy;
  sched::Engine engine(cluster, ecfg);
  const auto report = driver.run(engine);
  EXPECT_EQ(report.tasks_executed, driver.graph().size());

  std::vector<double> x0(n);
  for (std::uint64_t i = 0; i < n; ++i) x0[i] = 1.0 + 0.01 * static_cast<double>(i);
  const auto expect = reference_iterate(m, x0, s.iterations);
  const auto got = driver.gather_result();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-9 * (1.0 + std::abs(expect[i]))) << "at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, IteratedSpmvCorrectness,
    ::testing::Values(
        Scenario{1, 3, 2, ReductionMode::Simple, sched::LocalPolicy::Fifo, true},
        Scenario{1, 3, 2, ReductionMode::Interleaved, sched::LocalPolicy::DataAware, true},
        Scenario{3, 3, 2, ReductionMode::Simple, sched::LocalPolicy::DataAware, true},
        Scenario{3, 3, 2, ReductionMode::Interleaved, sched::LocalPolicy::DataAware, true},
        Scenario{3, 3, 3, ReductionMode::Interleaved, sched::LocalPolicy::DataAware, false},
        Scenario{3, 3, 2, ReductionMode::Interleaved, sched::LocalPolicy::BackAndForth, true},
        Scenario{2, 4, 2, ReductionMode::Interleaved, sched::LocalPolicy::DataAware, true},
        Scenario{4, 4, 3, ReductionMode::Simple, sched::LocalPolicy::DataAware, true}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      const Scenario& s = info.param;
      return "n" + std::to_string(s.nodes) + "_k" + std::to_string(s.k) + "_i" +
             std::to_string(s.iterations) + "_" +
             (s.mode == ReductionMode::Simple ? "simple" : "interleaved") + "_" +
             (s.policy == sched::LocalPolicy::Fifo
                  ? "fifo"
                  : (s.policy == sched::LocalPolicy::DataAware ? "aware" : "baf")) +
             (s.inter_sync ? "_sync" : "_nosync");
    });

TEST(IteratedSpmv, SellDeploymentMatchesDenseReference) {
  // Same pipeline, but blocks are stored as SELL-C-σ: deployment
  // serializes the new format and the task bodies dispatch on the magic.
  testutil::TempDir dir("itspmv_sell");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 64ull << 20;
  storage::StorageCluster cluster(2, cfg);

  const std::uint64_t n = 96;
  CsrMatrix m = spmv::generate_power_law(n, n, 6.0, 1.6, 4242);
  for (auto& v : m.values) v *= 0.1;

  spmv::KernelConfig kernels;
  kernels.format = spmv::MatrixFormat::Sell;
  kernels.sell_chunk = 4;
  kernels.sell_sigma = 16;
  const auto owner = spmv::column_strip_owner(2);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner, "A", kernels);
  EXPECT_EQ(deployed.format, spmv::MatrixFormat::Sell);
  EXPECT_EQ(deployed.total_nnz(), m.nnz());
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 0.01 * static_cast<double>(i); });

  IteratedSpmvConfig config;
  config.iterations = 2;
  config.kernels = kernels;
  IteratedSpmv driver(cluster, deployed, config);
  sched::Engine engine(cluster, {});
  driver.run(engine);

  std::vector<double> x0(n);
  for (std::uint64_t i = 0; i < n; ++i) x0[i] = 1.0 + 0.01 * static_cast<double>(i);
  const auto expect = reference_iterate(m, x0, 2);
  const auto got = driver.gather_result();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i], expect[i], 1e-9 * (1.0 + std::abs(expect[i]))) << "at index " << i;
  }
}

TEST(IteratedSpmv, CommandListMatchesFig3Shape) {
  testutil::TempDir dir("fig3");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  storage::StorageCluster cluster(1, cfg);
  CsrMatrix m = spmv::generate_uniform_gap(30, 30, 2.0, 9);
  const auto owner = spmv::column_strip_owner(1);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });
  IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = ReductionMode::Simple;
  IteratedSpmv driver(cluster, deployed, config);

  const std::string commands = driver.command_list();
  // 9 multiplies and 3 sums per iteration, 2 iterations (Fig. 3 text).
  EXPECT_EQ(std::count(commands.begin(), commands.end(), '*'), 18);
  EXPECT_NE(commands.find("x_{0,0}^1 = A_{0,0} * x_0^0"), std::string::npos);
  EXPECT_NE(commands.find("x_0^1 = x_{0,0}^1 + x_{0,1}^1 + x_{0,2}^1"), std::string::npos);
  EXPECT_NE(commands.find("x_{2,2}^2 = A_{2,2} * x_2^1"), std::string::npos);

  const std::string deps = driver.dependency_list();
  // Fig. 4: second-iteration multiply x_{u,v}^2 depends on x_v^1.
  EXPECT_NE(deps.find("x_{0,1}^2 (A_0_1) <- x_1^1"), std::string::npos);
}

TEST(IteratedSpmv, DagSizesMatchFig4) {
  testutil::TempDir dir("fig4");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  storage::StorageCluster cluster(1, cfg);
  CsrMatrix m = spmv::generate_uniform_gap(30, 30, 2.0, 9);
  const auto owner = spmv::column_strip_owner(1);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });

  // Without syncs: exactly the Fig. 4 DAG (9 multiplies + 3 sums per iter).
  IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = ReductionMode::Simple;
  config.inter_iteration_sync = false;
  IteratedSpmv driver(cluster, deployed, config);
  // Simple mode adds one syncm task per iteration.
  EXPECT_EQ(driver.graph().size(), 2u * (9 + 3 + 1));

  std::size_t mults = 0, sums = 0;
  for (sched::TaskId t = 0; t < driver.graph().size(); ++t) {
    const auto& kind = driver.graph().task(t).kind;
    if (kind == "multiply") ++mults;
    if (kind == "sum") ++sums;
  }
  EXPECT_EQ(mults, 18u);
  EXPECT_EQ(sums, 6u);
}

TEST(IteratedSpmv, CleanupDeletesIntermediatesKeepsResult) {
  testutil::TempDir dir("cleanup");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  storage::StorageCluster cluster(1, cfg);
  CsrMatrix m = spmv::generate_uniform_gap(30, 30, 2.0, 9);
  const auto owner = spmv::column_strip_owner(1);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });
  IteratedSpmvConfig config;
  config.iterations = 2;
  IteratedSpmv driver(cluster, deployed, config);
  sched::Engine engine(cluster, {});
  driver.run(engine);
  driver.cleanup_intermediates();

  EXPECT_FALSE(cluster.node(0).array_meta("xp1_0_0").has_value());
  EXPECT_FALSE(cluster.node(0).array_meta("x1_0").has_value());
  EXPECT_TRUE(cluster.node(0).array_meta("x2_0").has_value());
}

}  // namespace
}  // namespace dooc::solver
