// Matrix Market I/O and the MFDn-style symmetric half-storage kernel,
// with parameterized property sweeps.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "spmv/generator.hpp"
#include "spmv/kernels.hpp"
#include "spmv/matrix_market.hpp"

namespace dooc::spmv {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  const CsrMatrix m = generate_uniform_gap(30, 40, 3.0, 0xA);
  std::stringstream io;
  write_matrix_market(io, m);
  const CsrMatrix back = read_matrix_market(io);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  for (std::size_t i = 0; i < m.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.values[i], m.values[i]);
  }
}

TEST(MatrixMarket, SymmetricFilesAreExpanded) {
  std::stringstream io;
  io << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "3 3 4\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "2 2 2.0\n"
     << "3 3 5.0\n";
  const CsrMatrix m = read_matrix_market(io);
  m.validate();
  EXPECT_EQ(m.nnz(), 5u);  // 4 stored + 1 mirrored off-diagonal
  std::vector<double> x{1, 1, 1}, y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);  // 2 - 1
  EXPECT_DOUBLE_EQ(y[1], 1.0);  // -1 + 2
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(MatrixMarket, PatternFilesGetUnitValues) {
  std::stringstream io;
  io << "%%MatrixMarket matrix coordinate pattern general\n"
     << "% a comment line\n"
     << "2 2 2\n"
     << "1 2\n"
     << "2 1\n";
  const CsrMatrix m = read_matrix_market(io);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.values[0], 1.0);
}

TEST(MatrixMarket, DuplicateEntriesAreSummed) {
  std::stringstream io;
  io << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 3\n"
     << "1 1 1.5\n"
     << "1 1 2.5\n"
     << "2 2 1.0\n";
  const CsrMatrix m = read_matrix_market(io);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.values[0], 4.0);
}

TEST(MatrixMarket, MalformedInputsThrow) {
  auto parse = [](const std::string& text) {
    std::stringstream io(text);
    return read_matrix_market(io);
  };
  EXPECT_THROW(parse(""), IoError);
  EXPECT_THROW(parse("not a banner\n1 1 0\n"), IoError);
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n2 2\n"), IoError);
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n"), IoError);
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n"),
               IoError);
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate complex hermitian\n1 1 1\n1 1 1 0\n"),
               IoError);
}

TEST(Symmetrize, ProducesSymmetricMatrix) {
  const CsrMatrix m = generate_uniform_gap(25, 25, 2.0, 0xB);
  const CsrMatrix s = symmetrize(m);
  s.validate();
  auto at = [&](const CsrMatrix& a, std::uint64_t i, std::uint64_t j) -> double {
    for (std::uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == j) return a.values[k];
    }
    return 0.0;
  };
  for (std::uint64_t i = 0; i < 25; ++i) {
    for (std::uint64_t j = 0; j < 25; ++j) {
      EXPECT_DOUBLE_EQ(at(s, i, j), at(s, j, i));
      EXPECT_NEAR(at(s, i, j), 0.5 * (at(m, i, j) + at(m, j, i)), 1e-15);
    }
  }
}

TEST(LowerTriangle, KeepsExactlyTheLowerHalf) {
  const CsrMatrix s = generate_banded(20, 3, 5.0);
  const CsrMatrix l = extract_lower_triangle(s);
  l.validate();
  for (std::uint64_t r = 0; r < l.rows; ++r) {
    for (std::uint64_t k = l.row_ptr[r]; k < l.row_ptr[r + 1]; ++k) {
      EXPECT_LE(l.col_idx[k], r);
    }
  }
  // nnz(lower) = (nnz(full) + n) / 2 for a symmetric pattern with full diag.
  EXPECT_EQ(l.nnz(), (s.nnz() + 20) / 2);
}

// Property sweep: half-storage multiply == full multiply for random
// symmetric matrices of various shapes.
struct HalfStorageCase {
  std::uint64_t n;
  double gap;
  std::uint64_t seed;
};

class SymmetricHalfStorage : public ::testing::TestWithParam<HalfStorageCase> {};

TEST_P(SymmetricHalfStorage, MatchesFullMultiply) {
  const auto param = GetParam();
  const CsrMatrix full = symmetrize(generate_uniform_gap(param.n, param.n, param.gap, param.seed));
  const CsrMatrix lower = extract_lower_triangle(full);

  std::vector<std::byte> full_bytes, lower_bytes;
  serialize_csr(full, full_bytes);
  serialize_csr(lower, lower_bytes);
  const CsrView full_view = CsrView::from_bytes(full_bytes);
  const CsrView lower_view = CsrView::from_bytes(lower_bytes);

  SplitMix64 rng(param.seed ^ 0xF00D);
  std::vector<double> x(param.n), y_full(param.n), y_half(param.n);
  for (auto& v : x) v = rng.next_double() - 0.5;

  full_view.multiply(x, y_full);
  multiply_symmetric_half(lower_view, x, y_half);
  for (std::uint64_t i = 0; i < param.n; ++i) {
    EXPECT_NEAR(y_half[i], y_full[i], 1e-12 * (1.0 + std::abs(y_full[i]))) << "i=" << i;
  }
  // The paper's memory argument: half storage carries ~half the non-zeros.
  EXPECT_LT(lower.nnz(), full.nnz() * 6 / 10 + param.n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SymmetricHalfStorage,
                         ::testing::Values(HalfStorageCase{16, 1.5, 1},
                                           HalfStorageCase{64, 2.0, 2},
                                           HalfStorageCase{128, 4.0, 3},
                                           HalfStorageCase{256, 8.0, 4},
                                           HalfStorageCase{333, 3.0, 5}),
                         [](const auto& info) { return "n" + std::to_string(info.param.n); });

TEST(SymmetricHalf, RejectsUpperTriangleEntries) {
  const CsrMatrix full = generate_banded(6, 1, 3.0);  // has upper entries
  std::vector<std::byte> bytes;
  serialize_csr(full, bytes);
  const CsrView view = CsrView::from_bytes(bytes);
  std::vector<double> x(6, 1.0), y(6);
  EXPECT_THROW(multiply_symmetric_half(view, x, y), InvalidArgument);
}

}  // namespace
}  // namespace dooc::spmv
