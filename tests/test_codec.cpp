// spmv::codec — the per-block compression layer of the storage hot path:
//
//  * CodecConfig: the DOOC_CODEC key=value grammar, rejection of malformed
//    specs;
//  * round trip: every codec x format pair decodes bitwise-identically, on
//    generated and edge-case matrices; non-matrix payloads travel raw;
//  * hostile input: truncated frames, ratio-bomb headers (capped before any
//    allocation), CRC mismatches and malformed section streams all surface
//    as typed CodecError — including hand-forged frames whose CRCs are
//    valid but whose varint streams are not;
//  * BufferPool: aligned, padded acquisitions; free-list reuse; bounded
//    retention;
//  * storage + engine: encoded blocks decode transparently on the fetch
//    path, solver results stay bitwise identical across codec modes (incl.
//    read_ahead and the O_DIRECT fallback), fault injection composes with
//    compressed blocks, and the decode cost shows up as kBlameDecode;
//  * DES: the virtual decode stage moves makespan the right way with
//    codec_ratio/decode_rate and attributes the same kBlameDecode category
//    as the real engine — the cross-backend parity the ablation relies on.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "fault/fault_plan.hpp"
#include "obs/causal.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/engine.hpp"
#include "simcluster/testbed.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/block_grid.hpp"
#include "spmv/codec.hpp"
#include "spmv/generator.hpp"
#include "spmv/sell.hpp"
#include "storage/buffer_pool.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

using spmv::codec::CodecConfig;
using spmv::codec::CodecError;
using spmv::codec::Mode;

std::vector<std::byte> serialize(const spmv::CsrMatrix& m, bool sell) {
  std::vector<std::byte> csr;
  serialize_csr(m, csr);
  if (!sell) return csr;
  std::vector<std::byte> out;
  serialize_sell(spmv::build_sell(spmv::CsrView::from_bytes(csr), 8, 64), out);
  return out;
}

void expect_bitwise_round_trip(const std::vector<std::byte>& raw, const CodecConfig& cfg,
                               const std::string& what) {
  const auto frame = spmv::codec::encode_block(raw, cfg);
  ASSERT_TRUE(frame.has_value()) << what << ": encoder declined a matrix payload";
  ASSERT_TRUE(spmv::codec::is_encoded(frame->span())) << what;
  EXPECT_EQ(spmv::codec::decoded_bytes(frame->span(), raw.size()), raw.size()) << what;
  const DataBuffer decoded = spmv::codec::decode_block(frame->span(), raw.size());
  ASSERT_EQ(decoded.size(), raw.size()) << what;
  EXPECT_EQ(std::memcmp(decoded.data(), raw.data(), raw.size()), 0)
      << what << ": decode is not bitwise identical";
}

// ---------------------------------------------------------------------------
// CodecConfig: the DOOC_CODEC grammar
// ---------------------------------------------------------------------------

TEST(CodecConfig, ParseReadsTheFullGrammar) {
  const CodecConfig c =
      CodecConfig::parse("adaptive,min_ratio=1.25,shuffle=0,direct_io=1,read_ahead=3");
  EXPECT_EQ(c.mode, Mode::Adaptive);
  EXPECT_DOUBLE_EQ(c.min_ratio, 1.25);
  EXPECT_FALSE(c.shuffle_values);
  EXPECT_TRUE(c.direct_io);
  EXPECT_EQ(c.read_ahead, 3);

  EXPECT_EQ(CodecConfig::parse("mode=on").mode, Mode::On);
  EXPECT_EQ(CodecConfig::parse("off").mode, Mode::Off);
  EXPECT_EQ(CodecConfig::parse("").mode, Mode::Off);
  EXPECT_TRUE(CodecConfig::parse("on").enabled());
}

TEST(CodecConfig, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(CodecConfig::parse("mode=sideways"), InvalidArgument);
  EXPECT_THROW(CodecConfig::parse("on,zstd_level=3"), InvalidArgument);
  EXPECT_THROW(CodecConfig::parse("on,min_ratio=fast"), InvalidArgument);
  EXPECT_THROW(CodecConfig::parse("on,min_ratio=0.5"), InvalidArgument);
  EXPECT_THROW(CodecConfig::parse("on,read_ahead=-1"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Round trip: every codec x format pair, bitwise
// ---------------------------------------------------------------------------

TEST(CodecRoundTrip, EveryCodecFormatPairIsBitwise) {
  std::vector<std::pair<const char*, spmv::CsrMatrix>> kinds;
  kinds.emplace_back("uniform", spmv::generate_uniform_gap(512, 512, 6.0, 0xc0dec));
  kinds.emplace_back("power-law", spmv::generate_power_law(512, 512, 12.0, 1.5, 0xc0dec));
  kinds.emplace_back("banded", spmv::generate_banded(512, 9, 4.0));

  CodecConfig noshuffle;
  noshuffle.mode = Mode::On;
  noshuffle.shuffle_values = false;
  const std::pair<const char*, CodecConfig> variants[] = {
      {"on", CodecConfig{Mode::On}},
      {"on-noshuffle", noshuffle},
      {"adaptive", CodecConfig{Mode::Adaptive}},
  };

  for (const auto& [kind, matrix] : kinds) {
    for (const bool sell : {false, true}) {
      const std::vector<std::byte> raw = serialize(matrix, sell);
      for (const auto& [vname, cfg] : variants) {
        expect_bitwise_round_trip(
            raw, cfg, std::string(kind) + "/" + (sell ? "sell" : "csr") + "/" + vname);
      }
    }
  }
}

TEST(CodecRoundTrip, EdgeMatricesSurvive) {
  // Empty matrix, single-row matrix, and a tiny fully dense one — the
  // degenerate shapes where off-by-one section logic would show.
  spmv::CsrMatrix empty;
  empty.rows = 0;
  empty.cols = 0;
  empty.row_ptr = {0};

  spmv::CsrMatrix single;
  single.rows = 1;
  single.cols = 8;
  single.row_ptr = {0, 3};
  single.col_idx = {0, 3, 7};
  single.values = {1.0, -2.5, 1e300};

  spmv::CsrMatrix dense;
  dense.rows = 16;
  dense.cols = 16;
  dense.row_ptr.push_back(0);
  for (std::uint64_t r = 0; r < 16; ++r) {
    for (std::uint32_t c = 0; c < 16; ++c) {
      dense.col_idx.push_back(c);
      dense.values.push_back(static_cast<double>(r * 16 + c) * 0.25);
    }
    dense.row_ptr.push_back(dense.col_idx.size());
  }

  const CodecConfig on{Mode::On};
  int i = 0;
  for (const spmv::CsrMatrix* m : {&empty, &single, &dense}) {
    for (const bool sell : {false, true}) {
      expect_bitwise_round_trip(serialize(*m, sell), on,
                                "edge#" + std::to_string(i) + (sell ? "/sell" : "/csr"));
    }
    ++i;
  }
}

TEST(CodecRoundTrip, NonMatrixPayloadTravelsRaw) {
  // Payloads without a matrix magic (vectors, scratch buffers) are never
  // encoded, and decode_if_encoded passes them through untouched.
  DataBuffer blob(1024);
  auto bytes = blob.as<std::uint64_t>();
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto& w : bytes) {
    x ^= x << 13;
    x ^= x >> 7;
    w = x ^= x << 17;
  }
  EXPECT_FALSE(spmv::codec::encode_block(blob.span(), CodecConfig{Mode::On}).has_value());
  const DataBuffer through = spmv::codec::decode_if_encoded(blob, blob.size());
  EXPECT_EQ(through, blob) << "pass-through must alias, not copy";
}

TEST(CodecAdaptive, GateKeepsBlocksRawBelowMinRatio) {
  const auto m = spmv::generate_power_law(256, 256, 8.0, 1.5, 42);
  const std::vector<std::byte> raw = serialize(m, false);

  CodecConfig greedy;
  greedy.mode = Mode::Adaptive;
  greedy.min_ratio = 100.0;  // no real matrix compresses 100x
  EXPECT_FALSE(spmv::codec::encode_block(raw, greedy).has_value());

  CodecConfig modest;
  modest.mode = Mode::Adaptive;
  spmv::codec::EncodeStats stats;
  const auto frame = spmv::codec::encode_block(raw, modest, &stats);
  ASSERT_TRUE(frame.has_value());
  EXPECT_GE(stats.ratio(), modest.min_ratio);
  EXPECT_GT(stats.index_ratio(), 1.0) << "column deltas must varint-pack";
}

TEST(CodecEstimate, PredictsAnIndexWinForClusteredColumns) {
  const auto m = spmv::generate_power_law(1024, 1024, 16.0, 1.5, 7);
  const std::vector<std::byte> raw = serialize(m, false);
  const spmv::codec::CodecEstimate est = spmv::codec::estimate_block(raw);
  EXPECT_GT(est.sampled_deltas, 0u);
  EXPECT_GT(est.index_ratio, 1.0);
  EXPECT_GE(est.overall_ratio, 1.0);

  spmv::codec::EncodeStats stats;
  ASSERT_TRUE(spmv::codec::encode_block(raw, CodecConfig{Mode::On}, &stats).has_value());
  // The estimator is a sampler, not an oracle: right direction, right
  // ballpark (within 2x of the achieved index ratio).
  EXPECT_LT(est.index_ratio, stats.index_ratio() * 2.0);
  EXPECT_GT(est.index_ratio, stats.index_ratio() * 0.5);
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

std::vector<std::byte> valid_frame(std::vector<std::byte>* raw_out = nullptr) {
  const auto m = spmv::generate_power_law(256, 256, 8.0, 1.5, 99);
  std::vector<std::byte> raw = serialize(m, false);
  const auto frame = spmv::codec::encode_block(raw, CodecConfig{Mode::On});
  EXPECT_TRUE(frame.has_value());
  if (raw_out) *raw_out = std::move(raw);
  return {frame->data(), frame->data() + frame->size()};
}

void put_u64(std::vector<std::byte>& buf, std::size_t offset, std::uint64_t v) {
  std::memcpy(buf.data() + offset, &v, 8);
}

/// Hand-forge a frame around an arbitrary body with VALID CRCs, so decode
/// gets past the integrity checks and into the section-stream parser.
std::vector<std::byte> forge_frame(const std::vector<std::byte>& body, std::uint64_t raw_bytes) {
  std::vector<std::byte> frame(spmv::codec::kCodecHeaderBytes + body.size());
  put_u64(frame, 0, spmv::codec::kCodecMagic);
  put_u64(frame, 8, spmv::kEndianProbe);
  put_u64(frame, 16, raw_bytes);
  put_u64(frame, 24, body.size());
  put_u64(frame, 32, 0);  // flags
  const std::uint64_t crc_word =
      static_cast<std::uint64_t>(common::crc32({body.data(), body.size()}));
  put_u64(frame, 40, crc_word);  // raw CRC never reached on these paths
  std::memcpy(frame.data() + spmv::codec::kCodecHeaderBytes, body.data(), body.size());
  return frame;
}

TEST(CodecHostile, TruncatedFramesThrow) {
  const std::vector<std::byte> frame = valid_frame();
  const std::uint64_t cap = 1ull << 30;
  // Header cut short.
  EXPECT_THROW((void)spmv::codec::decoded_bytes(
                   {frame.data(), spmv::codec::kCodecHeaderBytes - 1}, cap),
               CodecError);
  // Body cut short of what the header declares.
  EXPECT_THROW((void)spmv::codec::decode_block({frame.data(), frame.size() - 1}, cap), CodecError);
  EXPECT_THROW((void)spmv::codec::decode_block({frame.data(), frame.size() / 2}, cap), CodecError);
}

TEST(CodecHostile, RatioBombHeaderIsCappedBeforeAllocation) {
  std::vector<std::byte> frame = valid_frame();
  put_u64(frame, 16, 1ull << 60);  // claim an exabyte decodes out of this
  try {
    (void)spmv::codec::decode_block(frame, 64ull << 20);
    FAIL() << "a declared size past the cap must throw";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds cap"), std::string::npos) << e.what();
  }
}

TEST(CodecHostile, BodyCorruptionFailsTheCrc) {
  std::vector<std::byte> raw;
  std::vector<std::byte> frame = valid_frame(&raw);
  frame[spmv::codec::kCodecHeaderBytes + frame.size() / 2] ^= std::byte{0x40};
  try {
    (void)spmv::codec::decode_block(frame, raw.size());
    FAIL() << "a flipped body byte must fail the body CRC";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
  }
}

TEST(CodecHostile, ForeignEndianAndBadMagicRejected) {
  const std::uint64_t cap = 1ull << 30;
  std::vector<std::byte> frame = valid_frame();
  put_u64(frame, 8, 0x0807060504030201ull);
  EXPECT_THROW((void)spmv::codec::decode_block(frame, cap), CodecError);
  put_u64(frame, 8, spmv::kEndianProbe);
  put_u64(frame, 0, 0x1111111111111111ull);
  EXPECT_THROW((void)spmv::codec::decoded_bytes(frame, cap), CodecError);
}

TEST(CodecHostile, ForgedSectionStreamsThrowTyped) {
  // Valid CRCs, malicious bodies: the section parser must reject each shape
  // with a CodecError, never crash or over-read.
  // 1. Overlong varint: eleven continuation bytes can't encode a u64.
  std::vector<std::byte> overlong(11, std::byte{0x80});
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(overlong, 64), 64), CodecError);
  // 2. Varint cut off by the end of the body.
  std::vector<std::byte> cut = {std::byte{0x80}};
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(cut, 64), 64), CodecError);
  // 3. raw_len varint present but the section header ends the body.
  std::vector<std::byte> headless = {std::byte{0x10}};
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(headless, 64), 64), CodecError);
  // 4. Raw section whose enc_len overruns the body.
  std::vector<std::byte> overrun = {std::byte{0x08}, std::byte{0x00}, std::byte{0x7F}};
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(overrun, 64), 64), CodecError);
  // 5. Unknown section encoding.
  std::vector<std::byte> unknown = {std::byte{0x08}, std::byte{0x09}, std::byte{0x08},
                                    std::byte{0},    std::byte{0},    std::byte{0},
                                    std::byte{0},    std::byte{0},    std::byte{0},
                                    std::byte{0},    std::byte{0}};
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(unknown, 8), 8), CodecError);
  // 6. Sections that exceed the declared decoded size.
  std::vector<std::byte> oversize = {std::byte{0x20}, std::byte{0x00}, std::byte{0x20}};
  oversize.resize(3 + 0x20, std::byte{0});
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(oversize, 8), 8), CodecError);
}

TEST(CodecHostile, HugeZigzagDeltaIsRejectedWithoutOverflow) {
  // A zigzag-u32 section whose second delta unzigzags to INT64_MAX: added
  // to a nonzero prefix this overflowed the signed accumulator before the
  // range check (UB under UBSan). The wrapped unsigned sum must land
  // outside [0, 2^32) and throw the typed range error instead.
  std::vector<std::byte> body = {std::byte{0x08},   // raw_len = 8 (two u32s)
                                 std::byte{0x02},   // encoding: zigzag-u32
                                 std::byte{0x0B},   // enc_len = 11
                                 std::byte{0x02}};  // zigzag(+1) -> prev = 1
  body.insert(body.end(), {std::byte{0xFE}});  // varint(2^64 - 2): unzigzag = INT64_MAX
  body.insert(body.end(), 8, std::byte{0xFF});
  body.push_back(std::byte{0x01});
  try {
    (void)spmv::codec::decode_block(forge_frame(body, 8), 8);
    FAIL() << "an out-of-range reconstructed u32 must throw";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos) << e.what();
  }

  // The INT64_MIN twin (zigzag 2^64 - 1) from a zero prefix wraps high too.
  std::vector<std::byte> negative = {std::byte{0x04},  // raw_len = 4 (one u32)
                                     std::byte{0x02},  // encoding: zigzag-u32
                                     std::byte{0x0A},  // enc_len = 10
                                     std::byte{0xFF}};
  negative.insert(negative.end(), 8, std::byte{0xFF});
  negative.push_back(std::byte{0x01});
  EXPECT_THROW((void)spmv::codec::decode_block(forge_frame(negative, 4), 4), CodecError);
}

TEST(CodecEstimate, HostileRowPtrValuesDoNotOverflowTheWidthHistogram) {
  // CsrView::from_bytes validates sizes, not row_ptr values: a corrupt file
  // can carry a row_ptr entry of 2^64 - 1, whose sampled delta needs the
  // full 10-byte varint width. The estimator's width histogram must have a
  // slot for it (it used to write one past the array on the stack).
  const auto m = spmv::generate_power_law(64, 64, 4.0, 1.5, 5);
  std::vector<std::byte> raw = serialize(m, false);
  put_u64(raw, 5 * 8 + 8, 0xFFFFFFFFFFFFFFFFull);  // row_ptr[1]
  const spmv::codec::CodecEstimate est = spmv::codec::estimate_block(raw);
  EXPECT_GT(est.sampled_deltas, 0u) << "the corrupt pointer section must still be sampled";
}

TEST(CodecHostile, ProbeFrameValidatesTheWholeFile) {
  const std::vector<std::byte> frame = valid_frame();
  const std::span<const std::byte> head(frame.data(), spmv::codec::kCodecHeaderBytes);
  const std::uint64_t cap = 1ull << 30;
  EXPECT_EQ(spmv::codec::probe_frame(head, frame.size(), cap),
            spmv::codec::decoded_bytes(frame, cap));
  // A file size that disagrees with header+body is a truncated or padded
  // file — the scan must not trust it.
  EXPECT_THROW((void)spmv::codec::probe_frame(head, frame.size() - 1, cap), CodecError);
  EXPECT_THROW((void)spmv::codec::probe_frame(head, frame.size() + 8, cap), CodecError);
  EXPECT_THROW((void)spmv::codec::probe_frame(head, frame.size(), 16), CodecError);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(CodecBufferPool, AcquisitionsAreAlignedAndPadded) {
  storage::BufferPool pool;
  const std::size_t align = pool.alignment();
  EXPECT_GE(align, 512u) << "O_DIRECT needs at least sector alignment";
  DataBuffer b = pool.acquire(1000);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % align, 0u);
  EXPECT_EQ(pool.padded_capacity(1000) % align, 0u);
  EXPECT_GE(pool.padded_capacity(1000), 1000u);
  // The padding contract: an O_DIRECT pread of the rounded-up length may
  // land through data() — write the full padded extent to prove it's ours.
  std::memset(b.data(), 0xAB, pool.padded_capacity(1000));
}

TEST(CodecBufferPool, FreeListReusesAndRetentionIsBounded) {
  storage::BufferPool::Config cfg;
  cfg.max_retained = 4;
  storage::BufferPool pool(cfg);

  {
    DataBuffer first = pool.acquire(8192);
  }  // returns to the free list
  ASSERT_EQ(pool.stats().retained, 1u);
  {
    DataBuffer again = pool.acquire(8192);
    EXPECT_EQ(pool.stats().reuses, 1u) << "same size class must come from the free list";
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }

  // A burst bigger than the retention cap: the excess goes back to the
  // allocator instead of pinning memory.
  std::vector<DataBuffer> burst;
  for (int i = 0; i < 12; ++i) burst.push_back(pool.acquire(8192));
  EXPECT_EQ(pool.stats().outstanding, 12u);
  burst.clear();
  const storage::BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_LE(s.retained, static_cast<std::uint64_t>(cfg.max_retained));
  EXPECT_GE(s.allocations, 12u);
}

TEST(CodecBufferPool, BuffersOutliveThePool) {
  DataBuffer survivor;
  {
    storage::BufferPool pool;
    survivor = pool.acquire(256);
    survivor.as<std::uint64_t>()[0] = 0xFEEDFACE;
  }
  EXPECT_EQ(survivor.as<std::uint64_t>()[0], 0xFEEDFACEu) << "deleter must not dangle";
}

// ---------------------------------------------------------------------------
// Storage + engine: transparent decode, fault interop, blame parity
// ---------------------------------------------------------------------------

struct SolveOutcome {
  std::vector<double> result;
  storage::StorageStats stats;
  double decode_blame_us = 0.0;
  double compression_ratio = 1.0;
};

/// Two-iteration distributed SpMV under a memory squeeze that forces
/// per-iteration block reloads from the scratch files — the path where
/// encoded blocks must decode on the fetchers.
SolveOutcome solve_with(const CodecConfig& codec, std::shared_ptr<fault::FaultPlan> plan = nullptr,
                        int nodes = 2) {
  testutil::TempDir dir("codec_solve");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 256ull << 10;
  cfg.throttle_read_bw = 80e6;  // loads must dominate for blame to see them
  cfg.codec = codec;
  cfg.fault_plan = std::move(plan);
  storage::StorageCluster cluster(nodes, cfg);

  const auto m = spmv::generate_power_law(768, 768, 48.0, 1.5, 2012);
  const auto owner = spmv::row_strip_owner(nodes);
  const auto deployed = spmv::deploy_matrix(cluster, m, 2, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 1e-3 * i; });

  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  config.mode = solver::ReductionMode::Interleaved;
  config.inter_iteration_sync = false;
  solver::IteratedSpmv driver(cluster, deployed, config);

  obs::TraceSession::instance().start();
  sched::Engine engine(cluster, sched::EngineConfig{});
  driver.run(engine);
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();

  SolveOutcome out;
  out.result = driver.gather_result();
  out.stats = cluster.total_stats();
  out.compression_ratio = deployed.compression_ratio();
  const obs::causal::CausalGraph graph =
      obs::causal::CausalGraph::build(obs::parse_chrome_trace(obs::chrome_trace_json(events)));
  out.decode_blame_us = graph.blame().get(obs::causal::kBlameDecode);
  return out;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(CodecStorage, EncodedBlocksDecodeTransparentlyAndBitExactly) {
  const SolveOutcome raw = solve_with(CodecConfig{});
  const SolveOutcome on = solve_with(CodecConfig{Mode::On});

  ASSERT_FALSE(raw.result.empty());
  EXPECT_TRUE(bitwise_equal(raw.result, on.result))
      << "codec must be invisible to the solver's numerics";
  EXPECT_EQ(raw.stats.decoded_blocks, 0u);
  EXPECT_GT(on.stats.decoded_blocks, 0u) << "the squeeze must force reloads of encoded blocks";
  EXPECT_GT(on.stats.decoded_bytes, 0u);
  EXPECT_GT(on.compression_ratio, 1.0);
  EXPECT_DOUBLE_EQ(raw.compression_ratio, 1.0);
}

TEST(CodecStorage, DecodeCostSurfacesAsItsOwnBlameCategory) {
  // Single node: reductions stay local, so the critical-path walk reaches
  // an encoded matrix-block load (Load nodes have no predecessors — with
  // more nodes the walk ends on a raw partial-result transfer instead).
  // This is the engine half of the DES parity in CodecSim below.
  const SolveOutcome raw = solve_with(CodecConfig{}, nullptr, 1);
  const SolveOutcome on = solve_with(CodecConfig{Mode::On}, nullptr, 1);
  EXPECT_EQ(raw.decode_blame_us, 0.0);
  EXPECT_GT(on.decode_blame_us, 0.0)
      << "decode on the fetch path must split out of the load's demand-io";
}

TEST(CodecStorage, ReadAheadAndDirectIoKeepResultsBitExact) {
  const SolveOutcome raw = solve_with(CodecConfig{});
  const SolveOutcome tuned = solve_with(CodecConfig::parse("on,read_ahead=2,direct_io=1"));
  // direct_io falls back gracefully where the filesystem refuses O_DIRECT,
  // so this asserts behaviour, not the syscall flavor.
  EXPECT_TRUE(bitwise_equal(raw.result, tuned.result));
  EXPECT_GT(tuned.stats.decoded_blocks, 0u);
}

TEST(CodecStorage, FaultInjectionComposesWithCompressedBlocks) {
  const SolveOutcome clean = solve_with(CodecConfig{});
  auto plan = std::make_shared<fault::FaultPlan>(
      fault::FaultPlan::parse("seed=3,read_error=0.3,retries=10,backoff=1us:4us"));
  const SolveOutcome faulty = solve_with(CodecConfig{Mode::Adaptive}, plan);

  EXPECT_GT(plan->injected(fault::FaultKind::ReadError), 0u)
      << "30% read errors across dozens of block loads must fire";
  EXPECT_GT(faulty.stats.decoded_blocks, 0u);
  EXPECT_TRUE(bitwise_equal(clean.result, faulty.result))
      << "retried reads of codec frames must still decode bit-exactly";
}

// ---------------------------------------------------------------------------
// DES: modeled decode cost, blame-category parity with the engine
// ---------------------------------------------------------------------------

sim::TestbedExperiment small_experiment() {
  sim::TestbedExperiment e;
  e.nodes = 4;
  e.iterations = 2;
  e.rows_per_node = 100'000;
  e.nnz_per_node = 1'000'000;
  e.blocks_per_node_side = 2;
  e.submatrix_bytes = 64ull << 20;
  return e;
}

TEST(CodecSim, CompressionMovesMakespanAndDecodeRateCharges) {
  const sim::TestbedExperiment raw = small_experiment();
  sim::TestbedExperiment packed = small_experiment();
  packed.codec_ratio = 2.0;

  const double t_raw = sim::run_testbed(raw).time_seconds();
  const double t_packed = sim::run_testbed(packed).time_seconds();
  EXPECT_LT(t_packed, t_raw) << "half the stored bytes over the same device must be faster";

  // Throttle the virtual decoder below the device: now the decode stage
  // dominates and the compressed run must cost MORE than its fast-decode
  // twin — the DES models the trade, not just the win.
  sim::SimResources slow;
  slow.decode_rate = 5e7;
  const double t_slow_decode = sim::run_testbed(packed, slow).time_seconds();
  EXPECT_GT(t_slow_decode, t_packed);
}

TEST(CodecSim, VirtualDecodeSpansFeedTheSameBlameCategory) {
  // Single node (reductions stay local, so the critical-path walk reaches a
  // matrix-block load, not a raw partial transfer) under a memory squeeze
  // that forces per-iteration reloads of the encoded blocks.
  sim::TestbedExperiment packed = small_experiment();
  packed.nodes = 1;
  packed.codec_ratio = 2.0;
  sim::SimResources squeeze;
  squeeze.node_memory = 192ull << 20;  // < 4 blocks x 64 MB

  obs::TraceSession::instance().start();
  (void)sim::run_testbed(packed, squeeze);
  const std::vector<obs::Event> events = obs::TraceSession::instance().stop();
  const obs::causal::CausalGraph graph =
      obs::causal::CausalGraph::build(obs::parse_chrome_trace(obs::chrome_trace_json(events)));
  EXPECT_GT(graph.blame().get(obs::causal::kBlameDecode), 0.0)
      << "the DES must attribute decode time under the same category as the engine";

  sim::TestbedExperiment raw = packed;
  raw.codec_ratio = 1.0;
  obs::TraceSession::instance().start();
  (void)sim::run_testbed(raw, squeeze);
  const std::vector<obs::Event> raw_events = obs::TraceSession::instance().stop();
  const obs::causal::CausalGraph raw_graph =
      obs::causal::CausalGraph::build(obs::parse_chrome_trace(obs::chrome_trace_json(raw_events)));
  EXPECT_EQ(raw_graph.blame().get(obs::causal::kBlameDecode), 0.0)
      << "raw stored blocks must not emit virtual decode spans";
}

}  // namespace
}  // namespace dooc
