#include <gtest/gtest.h>

#include "common/error.hpp"
#include "perfmodel/hopper_model.hpp"

namespace dooc::perfmodel {
namespace {

TEST(Triangular, GridSizeRoundTrips) {
  EXPECT_EQ(triangular_grid_d(276), 23);    // the paper's processor counts
  EXPECT_EQ(triangular_grid_d(1128), 47);
  EXPECT_EQ(triangular_grid_d(4560), 95);
  EXPECT_EQ(triangular_grid_d(18336), 191);
  EXPECT_THROW(triangular_grid_d(100), dooc::InvalidArgument);
}

TEST(Triangular, NextTriangularCovers) {
  EXPECT_EQ(next_triangular(1), 1);
  EXPECT_EQ(next_triangular(2), 3);
  EXPECT_EQ(next_triangular(276), 276);
  EXPECT_EQ(next_triangular(277), 300);
}

TEST(HopperModel, CalibrationReproducesTable2Times) {
  const auto model = HopperModel::calibrated();
  for (const auto& c : hopper_reference()) {
    const auto p = model.predict(c.dimension, c.nnz, c.np);
    // Total 99-iteration times within 25% of the measurements.
    EXPECT_NEAR(p.t_iter() * 99.0, c.t_total_99, 0.25 * c.t_total_99) << c.name;
    // Communication fractions within 10 percentage points.
    EXPECT_NEAR(p.comm_fraction(), c.comm_fraction, 0.10) << c.name;
  }
}

TEST(HopperModel, CommFractionGrowsWithScale) {
  const auto model = HopperModel::calibrated();
  double prev = 0.0;
  for (const auto& c : hopper_reference()) {
    const auto p = model.predict(c.dimension, c.nnz, c.np);
    EXPECT_GT(p.comm_fraction(), prev) << c.name;
    prev = p.comm_fraction();
  }
  // The paper's headline: at 18336 cores communication dominates (~86%).
  const auto& big = hopper_reference().back();
  EXPECT_GT(model.predict(big.dimension, big.nnz, big.np).comm_fraction(), 0.75);
}

TEST(HopperModel, CpuHoursMatchTable2) {
  const auto model = HopperModel::calibrated();
  const double expected[] = {0.19, 1.72, 9.70, 96.2};  // Table II row 3
  int i = 0;
  for (const auto& c : hopper_reference()) {
    const auto p = model.predict(c.dimension, c.nnz, c.np);
    EXPECT_NEAR(p.cpu_hours_per_iter(c.np), expected[i], 0.3 * expected[i]) << c.name;
    ++i;
  }
}

TEST(HopperModel, LocalSizesMatchTable1) {
  // avg size of v_local: 8.8 / 13.6 / 20.4 / 27.2 MB.
  EXPECT_NEAR(HopperModel::local_vector_bytes(4.66e7, 276) / 1e6, 8.8, 1.0);
  EXPECT_NEAR(HopperModel::local_vector_bytes(1.60e8, 1128) / 1e6, 13.6, 0.5);
  EXPECT_NEAR(HopperModel::local_vector_bytes(4.82e8, 4560) / 1e6, 20.4, 0.5);
  EXPECT_NEAR(HopperModel::local_vector_bytes(1.30e9, 18336) / 1e6, 27.2, 0.5);
  // avg size of H_local: 880 / 880 / 800 / 750 MB.
  EXPECT_NEAR(HopperModel::local_matrix_bytes(2.81e10, 276) / 1e6, 880, 150);
  EXPECT_NEAR(HopperModel::local_matrix_bytes(1.51e12, 18336) / 1e6, 750, 150);
}

TEST(HopperModel, MinProcessorsTracksTable1) {
  // n_p within ~25% of the paper's choices (they rounded to their grid).
  EXPECT_NEAR(HopperModel::min_processors(2.81e10), 276, 0.25 * 276);
  EXPECT_NEAR(HopperModel::min_processors(1.24e11), 1128, 0.25 * 1128);
  EXPECT_NEAR(HopperModel::min_processors(4.62e11), 4560, 0.25 * 4560);
  EXPECT_NEAR(HopperModel::min_processors(1.51e12), 18336, 0.25 * 18336);
  // And is always triangular.
  EXPECT_NO_THROW((void)triangular_grid_d(HopperModel::min_processors(5e11)));
}

TEST(HopperModel, CoefficientsAreNonNegative) {
  const auto model = HopperModel::calibrated();
  EXPECT_GE(model.c_nnz(), 0.0);
  EXPECT_GE(model.c_row(), 0.0);
  EXPECT_GE(model.c_vol(), 0.0);
  EXPECT_GE(model.c_sync(), 0.0);
}

}  // namespace
}  // namespace dooc::perfmodel
