// Tests for dooc::obs::telemetry — the live observability layer: config
// grammar, the TelemetryFrame wire codec (round-trip + hostile inputs),
// the rolling TelemetryHub and its cluster aggregate, the deterministic
// health Watchdog (missed heartbeats, stalled queues, stragglers), the
// DES replay of the same cadence under virtual time, the Prometheus HTTP
// scrape endpoint, and the histogram-through-trace machinery that makes
// `dooc_tracecat --metrics` merge Log2Histogram buckets across files.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_http.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "sched/task.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/array_creator.hpp"

using namespace dooc;
using namespace dooc::obs::telemetry;

namespace {

constexpr std::uint64_t kMs = 1'000'000ull;  // ns per millisecond

TelemetryFrame frame_of(int node, std::uint64_t seq, std::uint64_t ts_ns,
                        std::uint64_t tasks_executed, std::uint64_t inflight = 0,
                        std::uint64_t queue = 0) {
  TelemetryFrame f;
  f.node = node;
  f.seq = seq;
  f.ts_ns = ts_ns;
  f.tasks_executed = tasks_executed;
  f.tasks_inflight = inflight;
  f.queue_depth = queue;
  return f;
}

/// Feed a hub a steady cadence for `nodes` nodes: one frame per node per
/// interval, each node completing `rate[n]` tasks per interval.
void feed(TelemetryHub& hub, int nodes, int ticks, std::uint64_t interval_ns,
          const std::vector<std::uint64_t>& rate) {
  for (int t = 0; t < ticks; ++t) {
    const std::uint64_t now = static_cast<std::uint64_t>(t) * interval_ns;
    for (int n = 0; n < nodes; ++n) {
      hub.add(frame_of(n, static_cast<std::uint64_t>(t), now,
                       rate[static_cast<std::size_t>(n)] * static_cast<std::uint64_t>(t),
                       /*inflight=*/1),
              now);
    }
  }
}

}  // namespace

// ---- TelemetryConfig -------------------------------------------------------

TEST(TelemetryConfig, EmptySpecIsDisabledDefault) {
  const TelemetryConfig c = TelemetryConfig::parse("");
  EXPECT_FALSE(c.enabled);
  EXPECT_EQ(c.interval_ms, 250);
  EXPECT_EQ(c.miss_intervals, 3);
}

TEST(TelemetryConfig, ParsesFullGrammar) {
  const TelemetryConfig c = TelemetryConfig::parse(
      "on,interval=100,miss=2,stall=5,zscore=1.5,slow=3,p99=6,history=16,port=9464");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.interval_ms, 100);
  EXPECT_EQ(c.miss_intervals, 2);
  EXPECT_EQ(c.stall_intervals, 5);
  EXPECT_DOUBLE_EQ(c.straggler_zscore, 1.5);
  EXPECT_DOUBLE_EQ(c.slow_factor, 3.0);
  EXPECT_DOUBLE_EQ(c.p99_factor, 6.0);
  EXPECT_EQ(c.history, 16);
  EXPECT_EQ(c.metrics_port, 9464);
  EXPECT_EQ(c.interval_ns(), 100ull * kMs);
}

TEST(TelemetryConfig, BareOffDisablesAndKeyOnlySpecEnables) {
  EXPECT_FALSE(TelemetryConfig::parse("off").enabled);
  EXPECT_TRUE(TelemetryConfig::parse("on").enabled);
  const TelemetryConfig c = TelemetryConfig::parse("interval=50");
  EXPECT_TRUE(c.enabled) << "a non-empty spec without 'off' means on";
  EXPECT_EQ(c.interval_ms, 50);
}

TEST(TelemetryConfig, RejectsUnknownKeysBadValuesAndBareTokens) {
  EXPECT_THROW((void)TelemetryConfig::parse("bogus"), InvalidArgument);
  EXPECT_THROW((void)TelemetryConfig::parse("on,color=red"), InvalidArgument);
  EXPECT_THROW((void)TelemetryConfig::parse("interval=0"), InvalidArgument);
  EXPECT_THROW((void)TelemetryConfig::parse("interval=abc"), InvalidArgument);
  EXPECT_THROW((void)TelemetryConfig::parse("zscore=-1"), InvalidArgument);
  EXPECT_THROW((void)TelemetryConfig::parse("port=70000"), InvalidArgument);
  EXPECT_THROW((void)TelemetryConfig::parse("history=1"), InvalidArgument);
}

// ---- TelemetryFrame codec --------------------------------------------------

TEST(TelemetryFrame, RoundTripsEveryField) {
  TelemetryFrame f = frame_of(3, 17, 123456789, 42, 5, 9);
  f.inflight_bytes = 1ull << 33;
  f.cache_hits = 900;
  f.cache_misses = 100;
  f.blocks_decoded = 77;
  f.faults = 2;
  f.trace_dropped = 13;
  f.jobs.push_back({7, 10, 64});
  f.jobs.push_back({8, 64, 64});
  {
    auto& e = f.metrics.entries[{"sched.tasks_parked", 3}];
    e.kind = obs::MetricKind::Counter;
    e.count = 11;
  }
  {
    auto& e = f.metrics.entries[{"storage.inflight_bytes", 3}];
    e.kind = obs::MetricKind::Gauge;
    e.value = 4096.5;
  }
  {
    Log2Histogram h;
    for (const double v : {1.0, 3.0, 100.0, 100.0}) h.add(v);
    auto& e = f.metrics.entries[{"sched.exec_us", 3}];
    e.kind = obs::MetricKind::Histogram;
    e.hist = h;
  }

  const TelemetryFrame d = TelemetryFrame::decode(f.encode());
  EXPECT_EQ(d.node, 3);
  EXPECT_EQ(d.seq, 17u);
  EXPECT_EQ(d.ts_ns, 123456789u);
  EXPECT_EQ(d.tasks_executed, 42u);
  EXPECT_EQ(d.tasks_inflight, 5u);
  EXPECT_EQ(d.queue_depth, 9u);
  EXPECT_EQ(d.inflight_bytes, 1ull << 33);
  EXPECT_EQ(d.cache_hits, 900u);
  EXPECT_EQ(d.cache_misses, 100u);
  EXPECT_DOUBLE_EQ(d.cache_hit_rate(), 0.9);
  EXPECT_EQ(d.blocks_decoded, 77u);
  EXPECT_EQ(d.faults, 2u);
  EXPECT_EQ(d.trace_dropped, 13u);
  ASSERT_EQ(d.jobs.size(), 2u);
  EXPECT_EQ(d.jobs[0].job, 7u);
  EXPECT_EQ(d.jobs[0].tasks_done, 10u);
  EXPECT_EQ(d.jobs[0].tasks_total, 64u);
  ASSERT_EQ(d.metrics.entries.size(), 3u);
  EXPECT_EQ(d.metrics.entries.at({"sched.tasks_parked", 3}).count, 11u);
  EXPECT_DOUBLE_EQ(d.metrics.entries.at({"storage.inflight_bytes", 3}).value, 4096.5);
  const auto& h = d.metrics.entries.at({"sched.exec_us", 3}).hist;
  EXPECT_EQ(h.stats().count(), 4u);
  EXPECT_DOUBLE_EQ(h.stats().min(), 1.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(TelemetryFrame, DecodeRejectsHostileInputs) {
  const TelemetryFrame f = frame_of(1, 2, 3, 4);
  const DataBuffer enc = f.encode();

  // Truncations at every length never crash and never succeed.
  for (std::size_t len = 0; len < enc.size(); ++len) {
    EXPECT_THROW((void)TelemetryFrame::decode(DataBuffer::copy_of(enc.data(), len)), IoError)
        << "truncated at " << len;
  }
  // Bad magic / version.
  DataBuffer bad = enc.clone();
  bad.data()[0] ^= std::byte{0xff};
  EXPECT_THROW((void)TelemetryFrame::decode(bad), IoError);

  // A frame claiming an absurd job count must be rejected before any
  // allocation is attempted (byte flips land in the njobs field).
  TelemetryFrame jobs = frame_of(0, 0, 0, 0);
  jobs.jobs.push_back({1, 2, 3});
  DataBuffer je = jobs.encode();
  bool threw_somewhere = false;
  for (std::size_t i = 0; i < je.size(); ++i) {
    DataBuffer mut = je.clone();
    mut.data()[i] = static_cast<std::byte>(0xff);
    try {
      (void)TelemetryFrame::decode(mut);
    } catch (const IoError&) {
      threw_somewhere = true;
    }
  }
  EXPECT_TRUE(threw_somewhere);
}

// ---- TelemetryHub ----------------------------------------------------------

TEST(TelemetryHub, TrimsToHistoryAndTracksArrival) {
  TelemetryHub hub(4);
  for (int i = 0; i < 10; ++i) {
    hub.add(frame_of(0, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) * kMs, 0),
            static_cast<std::uint64_t>(i) * kMs);
  }
  EXPECT_EQ(hub.frames_received(), 10u);
  hub.for_each_series([](int node, const TelemetryHub::Series& s) {
    EXPECT_EQ(node, 0);
    ASSERT_EQ(s.frames.size(), 4u) << "rolling window trims to history";
    EXPECT_EQ(s.frames.front().seq, 6u);
    EXPECT_EQ(s.frames.back().seq, 9u);
    EXPECT_EQ(s.last_arrival_ns, 9u * kMs);
  });
  const auto latest = hub.latest();
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest.at(0).seq, 9u);
}

TEST(TelemetryHub, AggregateSynthesizesPerNodeAndPerJobEntries) {
  TelemetryHub hub(8);
  TelemetryFrame f0 = frame_of(0, 4, 100, 21, 2, 3);
  f0.cache_hits = 3;
  f0.cache_misses = 1;
  f0.jobs.push_back({5, 10, 40});
  auto& c = f0.metrics.entries[{"sched.tasks_parked", 0}];
  c.kind = obs::MetricKind::Counter;
  c.count = 6;
  hub.add(f0, 100);
  TelemetryFrame f1 = frame_of(1, 2, 100, 9, 0, 1);
  f1.jobs.push_back({5, 7, 40});
  hub.add(f1, 100);

  const obs::MetricsSnapshot agg = hub.aggregate();
  EXPECT_EQ(agg.entries.at({"telemetry.frames", 0}).count, 5u) << "seq 4 -> 5 frames";
  EXPECT_EQ(agg.entries.at({"telemetry.tasks_executed", 0}).count, 21u);
  EXPECT_EQ(agg.entries.at({"telemetry.tasks_executed", 1}).count, 9u);
  EXPECT_DOUBLE_EQ(agg.entries.at({"telemetry.tasks_inflight", 0}).value, 2.0);
  EXPECT_DOUBLE_EQ(agg.entries.at({"telemetry.cache_hit_rate", 0}).value, 0.75);
  EXPECT_EQ(agg.entries.at({"sched.tasks_parked", 0}).count, 6u)
      << "embedded registry snapshots ride into the aggregate";
  EXPECT_EQ(agg.entries.at({"jobs.j5.tasks_done", -1}).count, 17u) << "summed across nodes";
  EXPECT_EQ(agg.entries.at({"jobs.j5.tasks_total", -1}).count, 40u);
  // And the whole thing exports as Prometheus text.
  const std::string prom = agg.to_prometheus();
  EXPECT_NE(prom.find("dooc_telemetry_tasks_executed{node=\"0\"} 21"), std::string::npos);
  EXPECT_NE(prom.find("dooc_jobs_j5_tasks_done 17"), std::string::npos);
}

// ---- Watchdog --------------------------------------------------------------

TEST(Watchdog, MissedHeartbeatRaisesOnceThenRecovers) {
  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=100,miss=3");
  TelemetryHub hub(16);
  Watchdog dog(cfg);

  // Both nodes report at t=0; node 1 then goes silent.
  hub.add(frame_of(0, 0, 0, 1, 1), 0);
  hub.add(frame_of(1, 0, 0, 1, 1), 0);
  EXPECT_TRUE(dog.poll(hub, 100 * kMs).empty()) << "1 interval of silence is fine";

  hub.add(frame_of(0, 1, 200 * kMs, 2, 1), 200 * kMs);
  std::vector<HealthEvent> events = dog.poll(hub, 400 * kMs);  // node 1 silent 4 intervals
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthKind::MissedHeartbeat);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_GT(events[0].value, events[0].threshold);
  EXPECT_EQ(dog.suspected(), std::set<int>{1});

  // Edge-triggered: still silent, no duplicate event. Node 0 keeps
  // heartbeating so only node 1 stays under suspicion.
  hub.add(frame_of(0, 2, 400 * kMs, 3, 1), 400 * kMs);
  EXPECT_TRUE(dog.poll(hub, 500 * kMs).empty());
  EXPECT_EQ(dog.suspected(), std::set<int>{1});

  // The node comes back: one Recovered, suspicion cleared.
  hub.add(frame_of(0, 3, 600 * kMs, 4, 1), 600 * kMs);
  hub.add(frame_of(1, 1, 600 * kMs, 2, 1), 600 * kMs);
  events = dog.poll(hub, 600 * kMs);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthKind::Recovered);
  EXPECT_EQ(events[0].node, 1);
  EXPECT_TRUE(dog.suspected().empty());
}

TEST(Watchdog, StalledQueueNeedsInflightWorkAndNoProgress) {
  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=100,stall=4");
  TelemetryHub hub(32);
  Watchdog dog(cfg);

  // Node 0: tasks_executed frozen at 5 with work queued. Node 1: also
  // frozen but idle (no inflight, no queue) -> not stalled, just done.
  for (int t = 0; t <= 6; ++t) {
    const auto now = static_cast<std::uint64_t>(t) * 100 * kMs;
    hub.add(frame_of(0, static_cast<std::uint64_t>(t), now, 5, /*inflight=*/2, /*queue=*/1),
            now);
    hub.add(frame_of(1, static_cast<std::uint64_t>(t), now, 5, 0, 0), now);
    const auto events = dog.poll(hub, now);
    if (t < 4) {
      EXPECT_TRUE(events.empty()) << "tick " << t << ": window not yet spanned";
    } else if (t == 4) {
      ASSERT_EQ(events.size(), 1u);
      EXPECT_EQ(events[0].kind, HealthKind::StalledQueue);
      EXPECT_EQ(events[0].node, 0);
    } else {
      EXPECT_TRUE(events.empty()) << "edge-triggered";
    }
  }
  // Progress resumes -> Recovered.
  hub.add(frame_of(0, 7, 700 * kMs, 6, 2, 1), 700 * kMs);
  const auto events = dog.poll(hub, 700 * kMs);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthKind::Recovered);
}

TEST(Watchdog, StragglerByMedianRateTest) {
  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=100,zscore=10,slow=4");
  TelemetryHub hub(32);
  Watchdog dog(cfg);
  // Nodes 0-2 complete 8 tasks/interval; node 3 completes 1 -> median 8,
  // 1 * slow(4) = 4 < 8 trips the median test (zscore=10 disables z).
  feed(hub, 4, 8, 100 * kMs, {8, 8, 8, 1});
  const auto events = dog.poll(hub, 700 * kMs);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthKind::Straggler);
  EXPECT_EQ(events[0].node, 3);
}

TEST(Watchdog, StragglerByZScoreTest) {
  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=100,zscore=1.5,slow=1");
  TelemetryHub hub(32);
  Watchdog dog(cfg);
  // Rates 10/10/10/10/2: one-sided z of the slow node is well past 1.5
  // (and only the slow node sits below the median, so slow=1 cannot flag
  // anyone else).
  feed(hub, 5, 8, 100 * kMs, {10, 10, 10, 10, 2});
  const auto events = dog.poll(hub, 700 * kMs);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthKind::Straggler);
  EXPECT_EQ(events[0].node, 4);
}

TEST(Watchdog, FinishedNodeIsNotAStraggler) {
  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=100,zscore=1.5,slow=4");
  TelemetryHub hub(32);
  Watchdog dog(cfg);
  // Node 0 finished its share early: rate 0 with nothing queued or
  // running, while 3 busy peers keep completing. Idle != straggling —
  // the endgame of every run looks like this — so no verdict, and node
  // 0's zero rate must not drag the cluster distribution down either.
  for (int t = 0; t < 8; ++t) {
    const auto now = static_cast<std::uint64_t>(t) * 100 * kMs;
    hub.add(frame_of(0, static_cast<std::uint64_t>(t), now, 20, /*inflight=*/0, /*queue=*/0),
            now);
    for (int n = 1; n < 4; ++n) {
      hub.add(frame_of(n, static_cast<std::uint64_t>(t), now,
                       8 * static_cast<std::uint64_t>(t), /*inflight=*/1),
              now);
    }
  }
  EXPECT_TRUE(dog.poll(hub, 700 * kMs).empty());
}

TEST(Watchdog, StragglerByExecP99Test) {
  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=100,zscore=100,slow=1,p99=4");
  TelemetryHub hub(32);
  Watchdog dog(cfg);
  // Equal task rates (rate tests can't fire), but node 2's exec-time
  // histogram has a p99 far above the cluster's median per-node p99.
  for (int t = 0; t < 6; ++t) {
    const auto now = static_cast<std::uint64_t>(t) * 100 * kMs;
    for (int n = 0; n < 3; ++n) {
      TelemetryFrame f = frame_of(n, static_cast<std::uint64_t>(t), now,
                                  4 * static_cast<std::uint64_t>(t), 1);
      Log2Histogram h;
      for (int i = 0; i < 12; ++i) h.add(n == 2 ? 4000.0 : 100.0);
      auto& e = f.metrics.entries[{"sched.exec_us", n}];
      e.kind = obs::MetricKind::Histogram;
      e.hist = h;
      hub.add(f, now);
    }
  }
  const auto events = dog.poll(hub, 500 * kMs);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, HealthKind::Straggler);
  EXPECT_EQ(events[0].node, 2);
  EXPECT_NE(events[0].detail.find("p99"), std::string::npos);
}

TEST(Watchdog, HealthEventTextAndTraceEmission) {
  HealthEvent ev;
  ev.kind = HealthKind::Straggler;
  ev.node = 2;
  ev.ts_ns = 1500 * kMs;
  ev.value = 0.5;
  ev.threshold = 2.0;
  ev.detail = "rate 0.5/s vs median 4.0/s";
  const std::string text = ev.to_text();
  EXPECT_NE(text.find("straggler"), std::string::npos);
  EXPECT_NE(text.find("node 2"), std::string::npos);
  EXPECT_NE(text.find("rate 0.5/s"), std::string::npos);

  // Emitted into the trace as cat "health" with the _f64 args convention.
  obs::TraceSession::instance().start();
  emit_health_event(ev);
  const auto events = obs::TraceSession::instance().stop();
  const auto parsed = obs::parse_chrome_trace(obs::chrome_trace_json(events));
  bool found = false;
  for (const auto& p : parsed) {
    if (p.cat != "health") continue;
    found = true;
    EXPECT_EQ(p.name, "straggler");
    EXPECT_EQ(p.pid, 2);
    ASSERT_TRUE(p.args.count("value"));
    EXPECT_DOUBLE_EQ(p.args.at("value"), 0.5);
    ASSERT_TRUE(p.args.count("threshold"));
    EXPECT_DOUBLE_EQ(p.args.at("threshold"), 2.0);
  }
  EXPECT_TRUE(found);
}

// ---- DES replay under virtual time ----------------------------------------

namespace {

/// Per-node chains of durable-input tasks: `chain` tasks pinned to each of
/// `nodes` nodes, each charging the same est_flops.
sched::TaskGraph des_graph(solver::VirtualArrayCreator& creator, int nodes, int chain) {
  sched::TaskGraph g;
  for (int n = 0; n < nodes; ++n) {
    for (int i = 0; i < chain; ++i) {
      const std::string in = "m" + std::to_string(n) + "_" + std::to_string(i);
      creator.add_durable(in, 1 << 20, n);
      sched::Task t;
      t.name = "t" + std::to_string(n) + "_" + std::to_string(i);
      t.kind = "test";
      t.inputs.push_back({in, 0, 1 << 20});
      if (i > 0) {
        t.inputs.push_back({"c" + std::to_string(n) + "_" + std::to_string(i - 1), 0, 8});
      }
      t.outputs.push_back({"c" + std::to_string(n) + "_" + std::to_string(i), 0, 8});
      creator.create("c" + std::to_string(n) + "_" + std::to_string(i), 8, n);
      t.est_flops = 5e7;  // 0.1 s at the default 0.5 GF/s
      t.seq = i;
      t.preferred_node = n;
      g.add(std::move(t));
    }
  }
  g.build();
  return g;
}

}  // namespace

TEST(DesTelemetry, StragglerNodeIsFlaggedDeterministically) {
  solver::VirtualArrayCreator creator;
  const sched::TaskGraph g = des_graph(creator, 4, 20);

  sim::SimResources res;
  res.telemetry = TelemetryConfig::parse("on,interval=250,slow=4,zscore=100");
  res.node_compute_factor[3] = 8.0;  // node 3 is 8x slower

  const auto run = [&] {
    sim::SimEngine sim(4, res, creator.arrays());
    return sim.run(g);
  };
  const sim::SimMetrics a = run();
  EXPECT_GT(a.telemetry_frames, 0u);
  bool straggler3 = false;
  for (const auto& ev : a.health) {
    if (ev.kind == HealthKind::Straggler && ev.node == 3) straggler3 = true;
  }
  EXPECT_TRUE(straggler3) << "the 8x-slower node must be flagged";

  // Deterministic: a second run produces the identical verdict sequence.
  const sim::SimMetrics b = run();
  ASSERT_EQ(a.health.size(), b.health.size());
  for (std::size_t i = 0; i < a.health.size(); ++i) {
    EXPECT_EQ(a.health[i].kind, b.health[i].kind);
    EXPECT_EQ(a.health[i].node, b.health[i].node);
    EXPECT_EQ(a.health[i].ts_ns, b.health[i].ts_ns);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(DesTelemetry, TelemetryChargesNoVirtualCost) {
  solver::VirtualArrayCreator creator;
  const sched::TaskGraph g = des_graph(creator, 3, 12);

  sim::SimResources off;
  sim::SimEngine sim_off(3, off, creator.arrays());
  const double makespan_off = sim_off.run(g).makespan;

  sim::SimResources on = off;
  on.telemetry = TelemetryConfig::parse("on,interval=100");
  sim::SimEngine sim_on(3, on, creator.arrays());
  const sim::SimMetrics m = sim_on.run(g);
  // Telemetry charges nothing, but it does subdivide advance() steps at
  // tick boundaries, so allow float-associativity noise.
  EXPECT_NEAR(m.makespan, makespan_off, 1e-6 * makespan_off)
      << "virtual telemetry must not perturb the schedule";
  EXPECT_GT(m.telemetry_frames, 0u);
}

TEST(DesTelemetry, MutedNodeRaisesMissedHeartbeatUnderVirtualTime) {
  solver::VirtualArrayCreator creator;
  const sched::TaskGraph g = des_graph(creator, 3, 30);

  sim::SimResources res;
  res.telemetry = TelemetryConfig::parse("on,interval=250,miss=3");
  res.node_telemetry_mute_after[1] = 0.9;  // heartbeats stop ~1/3 in

  sim::SimEngine sim(3, res, creator.arrays());
  const sim::SimMetrics m = sim.run(g);
  bool missed1 = false;
  std::uint64_t when = 0;
  for (const auto& ev : m.health) {
    if (ev.kind == HealthKind::MissedHeartbeat && ev.node == 1) {
      missed1 = true;
      when = ev.ts_ns;
      break;
    }
  }
  ASSERT_TRUE(missed1);
  // Raised within 2 watchdog intervals of the threshold crossing: mute at
  // 0.9 s, last frame <= 0.9 s, threshold 3*250 ms -> must fire by ~2.15 s.
  EXPECT_LE(when, 2150 * kMs);
}

// ---- LocalTelemetry (in-process producer) ----------------------------------

TEST(LocalTelemetry, SamplesRegistryAndServesPrometheus) {
  auto& metrics = obs::Metrics::instance();
  metrics.counter("sched.tasks_executed", 0).add(12);
  metrics.counter("sched.tasks_executed", 1).add(7);
  metrics.gauge("sched.completion_queue_depth", 0).set(3);

  TelemetryConfig cfg = TelemetryConfig::parse("on,interval=3600000");  // no thread ticks
  LocalTelemetry lt(cfg, 2, "test");
  lt.sample_once(1 * kMs);
  lt.sample_once(2 * kMs);

  EXPECT_GE(lt.hub().frames_received(), 4u);
  const auto latest = lt.hub().latest();
  ASSERT_TRUE(latest.count(0));
  ASSERT_TRUE(latest.count(1));
  EXPECT_GE(latest.at(0).tasks_executed, 12u);
  EXPECT_GE(latest.at(1).tasks_executed, 7u);

  const std::string prom = lt.prometheus_text();
  EXPECT_NE(prom.find("dooc_telemetry_tasks_executed{node=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("dooc_telemetry_tasks_executed{node=\"1\"}"), std::string::npos);
}

// ---- Prometheus scrape endpoint --------------------------------------------

TEST(PromHttp, ServesProviderTextOverHttp) {
  obs::PromHttpServer server(0, [] {
    return std::string("# TYPE dooc_test counter\ndooc_test{node=\"2\"} 41\ndooc_up 1\n");
  });
  ASSERT_GT(server.port(), 0) << "port 0 resolves to an ephemeral port";

  const std::string body = obs::http_get("127.0.0.1", server.port());
  EXPECT_NE(body.find("dooc_test{node=\"2\"} 41"), std::string::npos);
  EXPECT_GE(server.requests(), 1u);

  const auto samples = obs::parse_prometheus(body);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "dooc_test");
  EXPECT_EQ(samples[0].node, 2);
  EXPECT_DOUBLE_EQ(samples[0].value, 41.0);
  EXPECT_EQ(samples[1].name, "dooc_up");
  EXPECT_EQ(samples[1].node, -1);
}

// ---- Log2Histogram merge/quantile edge cases (satellite) -------------------

TEST(Log2HistogramEdge, EmptyMergeEmptyStaysEmpty) {
  Log2Histogram a, b;
  a.merge(b);
  EXPECT_EQ(a.stats().count(), 0u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 0.0);
}

TEST(Log2HistogramEdge, EmptyMergeNonEmptyAdoptsAndCommutes) {
  Log2Histogram filled;
  for (const double v : {2.0, 8.0, 32.0}) filled.add(v);

  Log2Histogram empty_first;
  empty_first.merge(filled);
  EXPECT_EQ(empty_first.stats().count(), 3u);
  EXPECT_DOUBLE_EQ(empty_first.stats().min(), 2.0);
  EXPECT_DOUBLE_EQ(empty_first.stats().max(), 32.0);

  Log2Histogram filled_copy = filled;
  Log2Histogram empty;
  filled_copy.merge(empty);
  EXPECT_EQ(filled_copy.stats().count(), 3u);
  EXPECT_DOUBLE_EQ(filled_copy.quantile(0.99), empty_first.quantile(0.99));
}

TEST(Log2HistogramEdge, SingleBucketQuantilesClampToExactExtremes) {
  Log2Histogram h;
  for (int i = 0; i < 5; ++i) h.add(10.0);  // all in bucket [8,16)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Log2HistogramEdge, QuantileBoundsAreMinAndMax) {
  Log2Histogram h;
  for (const double v : {1.5, 3.0, 7.0, 700.0}) h.add(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 700.0);
  const double mid = h.quantile(0.5);
  EXPECT_GE(mid, 1.5);
  EXPECT_LE(mid, 700.0);
}

// ---- Histograms through the trace (dooc_tracecat --metrics merge) ----------

namespace {

/// What MetricsSampler::flush_once emits for one histogram, as parsed
/// events: two stats records plus one record per non-empty bucket.
std::vector<obs::ParsedEvent> hist_records(const std::string& name, int node,
                                           const Log2Histogram& h, double ts_us) {
  std::vector<obs::ParsedEvent> out;
  obs::ParsedEvent base;
  base.name = name;
  base.cat = "metrics_hist";
  base.phase = 'i';
  base.pid = node;
  base.ts_us = ts_us;
  const auto& st = h.stats();
  obs::ParsedEvent s1 = base;
  s1.args = {{"count", static_cast<double>(st.count())}, {"min", st.min()}, {"max", st.max()}};
  out.push_back(s1);
  obs::ParsedEvent s2 = base;
  s2.args = {{"sum", st.sum()}, {"mean", st.mean()}, {"m2", st.m2()}};
  out.push_back(s2);
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    const std::uint64_t c = h.bucket(static_cast<std::size_t>(b));
    if (c == 0) continue;
    obs::ParsedEvent ev = base;
    ev.args = {{"bucket", static_cast<double>(b)},
               {"bcount", static_cast<double>(c)},
               {"n", static_cast<double>(st.count())}};
    out.push_back(ev);
  }
  return out;
}

}  // namespace

TEST(TraceMetrics, TwoFileHistogramMergeSumsBucketsAcrossFiles) {
  // Two "processes" flushed the same histogram name: their buckets must
  // SUM on merge (the dooc_tracecat --metrics fix), not last-file-wins.
  Log2Histogram h1, h2;
  for (int i = 0; i < 10; ++i) h1.add(10.0);   // bucket [8,16)
  for (int i = 0; i < 30; ++i) h2.add(1000.0);  // bucket [512,1024)

  const auto file1 = hist_records("net.fetch_us", 0, h1, 50.0);
  const auto file2 = hist_records("net.fetch_us", 1, h2, 60.0);

  obs::MetricsSnapshot merged = obs::snapshot_from_trace(file1);
  merged.merge(obs::snapshot_from_trace(file2));

  // Different nodes: both entries survive independently.
  ASSERT_TRUE(merged.entries.count({"net.fetch_us", 0}));
  ASSERT_TRUE(merged.entries.count({"net.fetch_us", 1}));

  // Same (name, node) across two files — the collision case the old code
  // resolved by keeping the last file's histogram.
  const auto fileA = hist_records("net.exec_us", 0, h1, 50.0);
  const auto fileB = hist_records("net.exec_us", 0, h2, 60.0);
  obs::MetricsSnapshot byname = obs::snapshot_from_trace(fileA);
  byname.merge(obs::snapshot_from_trace(fileB));
  const auto& h = byname.entries.at({"net.exec_us", 0}).hist;
  EXPECT_EQ(h.stats().count(), 40u) << "10 + 30 samples, summed not replaced";
  EXPECT_DOUBLE_EQ(h.stats().min(), 10.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 1000.0);
  // Quantiles reflect the union: 10 low samples out of 40 put the median
  // and p99 in the high bucket, p10 in the low one.
  EXPECT_GE(h.quantile(0.5), 512.0);
  EXPECT_GE(h.quantile(0.99), 512.0);
  EXPECT_LE(h.quantile(0.1), 16.0);
}

TEST(TraceMetrics, RegistryHistogramRoundTripsThroughRealTrace) {
  // End-to-end over the real emitters: registry -> flush_once -> chrome
  // JSON -> parse -> snapshot_from_trace reconstructs count and extremes.
  auto& h = obs::Metrics::instance().histogram("tt.roundtrip_us", 5);
  obs::TraceSession::instance().start();
  h.add(3.0);
  h.add(900.0);
  h.add(900.0);
  obs::MetricsSampler::flush_once();
  const auto events = obs::TraceSession::instance().stop();
  const auto parsed = obs::parse_chrome_trace(obs::chrome_trace_json(events));

  const obs::MetricsSnapshot snap = obs::snapshot_from_trace(parsed);
  ASSERT_TRUE(snap.entries.count({"tt.roundtrip_us", 5}));
  const auto& entry = snap.entries.at({"tt.roundtrip_us", 5});
  EXPECT_EQ(entry.kind, obs::MetricKind::Histogram);
  EXPECT_EQ(entry.hist.stats().count(), 3u);
  EXPECT_DOUBLE_EQ(entry.hist.stats().min(), 3.0);
  EXPECT_DOUBLE_EQ(entry.hist.stats().max(), 900.0);
  EXPECT_DOUBLE_EQ(entry.hist.quantile(1.0), 900.0);
}

TEST(TraceMetrics, DroppedEventsSurfaceAsALiveCounter) {
  // Saturate a tiny ring so emits drop, then check the live counter moved.
  auto& dropped = obs::Metrics::instance().counter("obs.trace_dropped_events");
  const std::uint64_t before = dropped.get();
  obs::TraceSession::instance().start();
  for (int i = 0; i < 300000; ++i) {
    obs::emit_instant(obs::intern("drop_test"), obs::intern("spam"), 0, 0);
  }
  const std::uint64_t session_dropped = obs::TraceSession::instance().dropped();
  (void)obs::TraceSession::instance().stop();
  if (session_dropped > 0) {
    EXPECT_GE(dropped.get(), before + session_dropped);
  } else {
    GTEST_SKIP() << "ring big enough to absorb the spam on this build";
  }
}
