// The storage-subsystem-as-a-filter adapter: serialized requests over
// streams, tag-matched asynchronous replies (paper §III-B architecture).
#include <gtest/gtest.h>

#include <map>

#include "dataflow/layout.hpp"
#include "dataflow/runtime.hpp"
#include "storage/storage_cluster.hpp"
#include "storage/storage_filter.hpp"
#include "test_util.hpp"

namespace dooc::storage {
namespace {

struct FilterStack {
  testutil::TempDir dir{"sfilter"};
  StorageCluster cluster;
  FilterStack()
      : cluster(1, [&] {
          StorageConfig cfg;
          cfg.scratch_root = dir.str();
          return cfg;
        }()) {}
};

TEST(StorageFilter, CreateWriteReadDeleteOverStreams) {
  FilterStack stack;
  std::map<std::uint64_t, StorageReply> replies;

  df::Layout layout;
  layout.add_filter("storage", [&] {
    return std::make_unique<StorageServiceFilter>(&stack.cluster.node(0));
  });
  layout.add_filter("client", [&] {
    return std::make_unique<df::LambdaFilter>([&](df::FilterContext& ctx) {
      auto& out = ctx.output("requests");
      auto& in = ctx.input("responses");
      // Pipeline three requests before reading any reply (asynchrony).
      out.send(df::Message(encode_create("v", 32, 32), 1));
      std::vector<std::uint64_t> payload{41, 42, 43, 44};
      out.send(df::Message(
          encode_write("v", 0, std::as_bytes(std::span<const std::uint64_t>(payload))), 2));
      out.send(df::Message(encode_read("v", 8, 16), 3));
      for (int i = 0; i < 3; ++i) {
        auto msg = in.receive();
        ASSERT_TRUE(msg.has_value());
        replies[msg->tag] = decode_reply(*msg);
      }
      out.send(df::Message(encode_delete("v"), 4));
      auto msg = in.receive();
      ASSERT_TRUE(msg.has_value());
      replies[msg->tag] = decode_reply(*msg);
    });
  });
  layout.connect("client", "requests", "storage", "requests");
  layout.connect("storage", "responses", "client", "responses");

  df::Runtime rt(1);
  rt.run(layout);

  ASSERT_EQ(replies.size(), 4u);
  EXPECT_TRUE(replies[1].ok());
  EXPECT_TRUE(replies[2].ok());
  ASSERT_TRUE(replies[3].ok());
  const auto data = replies[3].data.as<std::uint64_t>();
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0], 42u);
  EXPECT_EQ(data[1], 43u);
  EXPECT_TRUE(replies[4].ok());
  EXPECT_FALSE(stack.cluster.node(0).array_meta("v").has_value());
}

TEST(StorageFilter, ErrorsComeBackAsReplies) {
  FilterStack stack;
  StorageReply reply;
  df::Layout layout;
  layout.add_filter("storage", [&] {
    return std::make_unique<StorageServiceFilter>(&stack.cluster.node(0));
  });
  layout.add_filter("client", [&] {
    return std::make_unique<df::LambdaFilter>([&](df::FilterContext& ctx) {
      ctx.output("requests").send(df::Message(encode_read("no_such_array", 0, 8), 9));
      auto msg = ctx.input("responses").receive();
      ASSERT_TRUE(msg.has_value());
      reply = decode_reply(*msg);
    });
  });
  layout.connect("client", "requests", "storage", "requests");
  layout.connect("storage", "responses", "client", "responses");
  df::Runtime rt(1);
  rt.run(layout);

  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.error.find("no_such_array"), std::string::npos);
}

TEST(StorageFilter, PrefetchIsAcknowledgedAndWarms) {
  FilterStack stack;
  auto& node = stack.cluster.node(0);
  node.create_array("w", 64, 64);
  {
    auto h = node.request_write({"w", 0, 64}).get();
  }
  node.flush_array("w");

  StorageReply reply;
  df::Layout layout;
  layout.add_filter("storage",
                    [&] { return std::make_unique<StorageServiceFilter>(&node); });
  layout.add_filter("client", [&] {
    return std::make_unique<df::LambdaFilter>([&](df::FilterContext& ctx) {
      ctx.output("requests").send(df::Message(encode_prefetch("w", 0, 64), 5));
      auto msg = ctx.input("responses").receive();
      ASSERT_TRUE(msg.has_value());
      reply = decode_reply(*msg);
    });
  });
  layout.connect("client", "requests", "storage", "requests");
  layout.connect("storage", "responses", "client", "responses");
  df::Runtime rt(1);
  rt.run(layout);
  EXPECT_TRUE(reply.ok());
  EXPECT_GE(node.stats().prefetch_requests, 1u);
}

TEST(StorageFilter, RoundTripEncodersAreSelfConsistent) {
  // decode_reply on a hand-built OK frame.
  BinaryWriter w;
  w.put<std::uint32_t>(0);
  w.put<std::uint64_t>(4);
  const char bytes[4] = {'a', 'b', 'c', 'd'};
  w.put_raw(bytes, 4);
  df::Message m(w.take(), 7);
  const auto reply = decode_reply(m);
  EXPECT_TRUE(reply.ok());
  EXPECT_EQ(reply.data.size(), 4u);
  EXPECT_EQ(static_cast<char>(reply.data.span()[0]), 'a');
}

}  // namespace
}  // namespace dooc::storage
