// Focused unit tests for the lower-level pieces: the asynchronous I/O
// filter pool, the partitioned catalog protocol, and max-min fairness
// properties of the flow network (parameterized sweep).
#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "simcluster/flow_network.hpp"
#include "storage/catalog.hpp"
#include "storage/io_worker.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

// ---------------------------------------------------------------------------
// IoWorkerPool
// ---------------------------------------------------------------------------

TEST(IoWorker, WriteThenReadRoundTrips) {
  testutil::TempDir dir("iow");
  storage::IoWorkerPool pool(2);
  const std::string path = dir.str() + "/file";
  DataBuffer data(4096);
  for (std::size_t i = 0; i < 4096; ++i) data.span()[i] = static_cast<std::byte>(i % 251);
  pool.write(path, 0, data).get();
  const DataBuffer back = pool.read(path, 0, 4096).get();
  EXPECT_EQ(std::memcmp(back.data(), data.data(), 4096), 0);
  EXPECT_EQ(pool.reads(), 1u);
  EXPECT_EQ(pool.writes(), 1u);
  EXPECT_EQ(pool.read_bytes(), 4096u);
}

TEST(IoWorker, OffsetWritesComposeAFile) {
  testutil::TempDir dir("iow2");
  storage::IoWorkerPool pool(2);
  const std::string path = dir.str() + "/file";
  std::vector<std::future<void>> writes;
  for (std::uint64_t b = 0; b < 8; ++b) {
    DataBuffer chunk(512);
    std::fill(chunk.span().begin(), chunk.span().end(), static_cast<std::byte>('a' + b));
    writes.push_back(pool.write(path, b * 512, std::move(chunk)));
  }
  for (auto& w : writes) w.get();
  for (std::uint64_t b = 0; b < 8; ++b) {
    const auto back = pool.read(path, b * 512, 512).get();
    EXPECT_EQ(static_cast<char>(back.span()[0]), static_cast<char>('a' + b));
    EXPECT_EQ(static_cast<char>(back.span()[511]), static_cast<char>('a' + b));
  }
}

TEST(IoWorker, MissingFileFailsTheFuture) {
  storage::IoWorkerPool pool(1);
  auto f = pool.read("/nonexistent/dooc/file", 0, 16);
  EXPECT_THROW(f.get(), IoError);
}

TEST(IoWorker, ShortReadFailsTheFuture) {
  testutil::TempDir dir("iow3");
  storage::IoWorkerPool pool(1);
  const std::string path = dir.str() + "/small";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("abc", 3);
  }
  auto f = pool.read(path, 0, 1024);
  EXPECT_THROW(f.get(), IoError);
}

TEST(IoWorker, ThrottleBoundsBandwidth) {
  testutil::TempDir dir("iow4");
  storage::IoWorkerPool pool(1, /*throttle_read_bw=*/1e6);  // 1 MB/s
  const std::string path = dir.str() + "/file";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> junk(200 * 1024, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  Stopwatch sw;
  pool.read(path, 0, 200 * 1024).get();
  EXPECT_GE(sw.seconds(), 0.15);  // 200 KB at 1 MB/s >= 0.2 s (slack for timers)
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

storage::ArrayMeta meta_of(const std::string& name, int home) {
  storage::ArrayMeta m;
  m.name = name;
  m.size = 1024;
  m.block_size = 256;
  m.home_node = home;
  m.path = "/scratch/" + name;
  return m;
}

TEST(Catalog, RegisterFindUnregister) {
  storage::CatalogShard shard;
  shard.register_array(meta_of("a", 2), true);
  const auto found = shard.find("a");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->home_node, 2);
  EXPECT_EQ(found->num_blocks(), 4u);
  EXPECT_EQ(found->block_bytes(3), 256u);
  EXPECT_EQ(shard.list().size(), 1u);
  shard.unregister_array("a");
  EXPECT_FALSE(shard.find("a").has_value());
}

TEST(Catalog, DuplicateRegistrationThrows) {
  storage::CatalogShard shard;
  shard.register_array(meta_of("a", 0), true);
  EXPECT_THROW(shard.register_array(meta_of("a", 1), true), InvalidArgument);
}

TEST(Catalog, HolderTracking) {
  storage::CatalogShard shard;
  shard.register_array(meta_of("a", 0), false);
  const storage::BlockKey key{"a", 1};
  EXPECT_FALSE(shard.block_info(key).durable);
  EXPECT_TRUE(shard.block_info(key).holders.empty());
  shard.note_holder(key, 3);
  shard.note_holder(key, 5);
  auto info = shard.block_info(key);
  EXPECT_EQ(info.holders.size(), 2u);
  shard.drop_holder(key, 3);
  EXPECT_EQ(shard.block_info(key).holders, std::vector<int>{5});
  shard.note_durable(key);
  EXPECT_TRUE(shard.block_info(key).durable);
}

TEST(Catalog, AwaitBlockFiresOnceOnAvailability) {
  storage::CatalogShard shard;
  shard.register_array(meta_of("a", 0), false);
  const storage::BlockKey key{"a", 0};
  int fired = 0;
  shard.await_block(key, [&](const storage::BlockKey&) { ++fired; });
  EXPECT_EQ(fired, 0);
  shard.note_holder(key, 1);
  EXPECT_EQ(fired, 1);
  shard.note_holder(key, 2);  // second holder must NOT refire old waiters
  EXPECT_EQ(fired, 1);
  // Already obtainable: fires immediately.
  shard.await_block(key, [&](const storage::BlockKey&) { ++fired; });
  EXPECT_EQ(fired, 2);
}

TEST(Catalog, LookupProtocolsFindTheAuthority) {
  storage::CatalogShard s0, s1, s2;
  storage::DistributedCatalog catalog({&s0, &s1, &s2});
  const std::string name = "needle";
  const int authority = catalog.authority_of(name);
  catalog.shard(authority).register_array(meta_of(name, authority), true);

  std::uint64_t rng_state = 7;
  const auto hash_result =
      catalog.lookup(name, (authority + 1) % 3, storage::LookupProtocol::HashOwner, &rng_state);
  ASSERT_TRUE(hash_result.meta.has_value());
  EXPECT_EQ(hash_result.hops, 1);

  const auto walk_result =
      catalog.lookup(name, (authority + 1) % 3, storage::LookupProtocol::RandomWalk, &rng_state);
  ASSERT_TRUE(walk_result.meta.has_value());
  EXPECT_GE(walk_result.hops, 1);
  EXPECT_LE(walk_result.hops, 2);

  const auto missing =
      catalog.lookup("ghost", 0, storage::LookupProtocol::RandomWalk, &rng_state);
  EXPECT_FALSE(missing.meta.has_value());
  EXPECT_EQ(missing.hops, 2);  // asked every other shard once
}

// ---------------------------------------------------------------------------
// Flow network max-min fairness properties (parameterized)
// ---------------------------------------------------------------------------

struct FlowScenario {
  int flows;
  double aggregate;
  double per_node;
  std::uint64_t seed;
};

class FlowFairness : public ::testing::TestWithParam<FlowScenario> {};

TEST_P(FlowFairness, RatesRespectEveryCapAndUseTheBottleneck) {
  const auto p = GetParam();
  sim::FlowNetwork net;
  const auto agg = net.add_resource("agg", p.aggregate);
  std::vector<sim::ResourceId> links;
  for (int i = 0; i < 6; ++i) {
    links.push_back(net.add_resource("n" + std::to_string(i), p.per_node));
  }
  SplitMix64 rng(p.seed);
  std::vector<int> link_of;
  for (int f = 0; f < p.flows; ++f) {
    const int l = static_cast<int>(rng.next_below(6));
    link_of.push_back(l);
    net.start_flow(1ull << 30, {links[static_cast<std::size_t>(l)], agg});
  }
  // Reconstruct rates by advancing a long, completion-free interval and
  // diffing remaining bytes (remaining() truncates to whole bytes, so the
  // step must be large enough for the truncation to vanish).
  std::vector<double> before(static_cast<std::size_t>(p.flows));
  std::vector<sim::FlowId> ids;
  for (int f = 0; f < p.flows; ++f) {
    before[static_cast<std::size_t>(f)] =
        static_cast<double>(net.remaining(static_cast<sim::FlowId>(f + 1)));
  }
  net.advance(1000.0);
  double total = 0.0;
  std::vector<double> per_link(6, 0.0);
  for (int f = 0; f < p.flows; ++f) {
    const double rate = (before[static_cast<std::size_t>(f)] -
                         static_cast<double>(net.remaining(static_cast<sim::FlowId>(f + 1)))) /
                        1000.0;
    EXPECT_GT(rate, 0.0);
    total += rate;
    per_link[static_cast<std::size_t>(link_of[static_cast<std::size_t>(f)])] += rate;
  }
  // Caps respected (1% numeric slack).
  EXPECT_LE(total, p.aggregate * 1.01);
  for (double r : per_link) EXPECT_LE(r, p.per_node * 1.01);
  // Work-conserving: the binding constraint is saturated.
  double max_possible = 0.0;
  for (int l = 0; l < 6; ++l) {
    if (per_link[static_cast<std::size_t>(l)] > 0 ||
        std::count(link_of.begin(), link_of.end(), l) > 0) {
      max_possible += p.per_node;
    }
  }
  max_possible = std::min(max_possible, p.aggregate);
  EXPECT_GE(total, max_possible * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, FlowFairness,
    ::testing::Values(FlowScenario{3, 1000, 100, 1}, FlowScenario{12, 1000, 100, 2},
                      FlowScenario{12, 300, 100, 3}, FlowScenario{24, 150, 100, 4},
                      FlowScenario{6, 10000, 100, 5}),
    [](const auto& info) {
      return "f" + std::to_string(info.param.flows) + "_agg" +
             std::to_string(static_cast<int>(info.param.aggregate));
    });

}  // namespace
}  // namespace dooc
