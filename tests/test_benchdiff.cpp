// Tests for the bench regression gate: the JsonReport writer's
// schema_version round-trip through the in-tree JSON parser, metric
// direction classification, and diff_reports' regression verdicts —
// including the file-level round-trip dooc_benchdiff performs.
#include <gtest/gtest.h>

#include <string>

#include "bench_util.hpp"
#include "common/benchdiff.hpp"
#include "common/json.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

using bench::Direction;

/// A minimal two-record report, with one knob to regress.
std::string report_json(double seconds, double gflops) {
  bench::JsonReport report;
  report.meta("bench", "unit");
  report.add_record()
      .field("name", "spmv")
      .field("format", "csr")
      .field("seconds", seconds)
      .field("gflops", gflops);
  report.add_record().field("name", "reduce").field("seconds", 0.5);
  testutil::TempDir dir("benchdiff_json");
  const std::string path = dir.str() + "/r.json";
  EXPECT_TRUE(report.write(path));
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  return text;
}

TEST(JsonReport, WritesSchemaVersionAndParsesBack) {
  const std::string text = report_json(1.0, 2.0);
  const json::Value doc = json::parse(text);
  const json::Value* ver = doc.find("schema_version");
  ASSERT_NE(ver, nullptr);
  EXPECT_DOUBLE_EQ(ver->number, static_cast<double>(bench::JsonReport::kSchemaVersion));
  const json::Value* records = doc.find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_TRUE(records->is_array());
  ASSERT_EQ(records->array.size(), 2u);
  const json::Value* secs = records->array[0].find("seconds");
  ASSERT_NE(secs, nullptr);
  EXPECT_DOUBLE_EQ(secs->number, 1.0);
  const json::Value* fmt = records->array[0].find("format");
  ASSERT_NE(fmt, nullptr);
  EXPECT_EQ(fmt->str, "csr");
}

TEST(BenchDiff, ClassifiesMetricDirectionsByName) {
  EXPECT_EQ(bench::classify_metric("seconds"), Direction::LowerBetter);
  EXPECT_EQ(bench::classify_metric("wall_time"), Direction::LowerBetter);
  EXPECT_EQ(bench::classify_metric("makespan"), Direction::LowerBetter);
  EXPECT_EQ(bench::classify_metric("wall_s"), Direction::LowerBetter);
  EXPECT_EQ(bench::classify_metric("critical_s"), Direction::LowerBetter);
  EXPECT_EQ(bench::classify_metric("gflops"), Direction::HigherBetter);
  EXPECT_EQ(bench::classify_metric("read_bandwidth"), Direction::HigherBetter);
  EXPECT_EQ(bench::classify_metric("overlap"), Direction::HigherBetter);
  EXPECT_EQ(bench::classify_metric("iterations"), Direction::Unknown);
}

TEST(BenchDiff, IdenticalReportsShowNoRegression) {
  const std::string a = report_json(1.0, 2.0);
  const auto result = bench::diff_reports(a, a, {});
  EXPECT_FALSE(result.regression);
  EXPECT_EQ(result.regressions(), 0u);
  EXPECT_EQ(result.deltas.size(), 3u);  // seconds+gflops, seconds
  EXPECT_TRUE(result.notes.empty());
}

TEST(BenchDiff, SlowdownPastThresholdGates) {
  const auto result = bench::diff_reports(report_json(1.0, 2.0), report_json(1.5, 2.0), {});
  EXPECT_TRUE(result.regression);
  ASSERT_EQ(result.regressions(), 1u);
  for (const auto& d : result.deltas) {
    if (d.regression) {
      EXPECT_EQ(d.metric, "seconds");
      EXPECT_NEAR(d.change_pct, 50.0, 1e-9);
    }
  }
  // The same delta under a looser threshold passes.
  bench::DiffOptions loose;
  loose.threshold_pct = 60.0;
  EXPECT_FALSE(bench::diff_reports(report_json(1.0, 2.0), report_json(1.5, 2.0), loose).regression);
}

TEST(BenchDiff, ThroughputDropGatesAndImprovementDoesNot) {
  // gflops is higher-better: a 50% drop regresses, a 50% gain does not.
  EXPECT_TRUE(bench::diff_reports(report_json(1.0, 2.0), report_json(1.0, 1.0), {}).regression);
  EXPECT_FALSE(bench::diff_reports(report_json(1.0, 2.0), report_json(1.0, 3.0), {}).regression);
  // A large speedup (seconds halved) is an improvement, never a regression.
  EXPECT_FALSE(bench::diff_reports(report_json(1.0, 2.0), report_json(0.5, 2.0), {}).regression);
}

TEST(BenchDiff, OverridesAndIgnoresWin) {
  bench::DiffOptions opts;
  opts.ignore = {"seconds"};
  EXPECT_FALSE(bench::diff_reports(report_json(1.0, 2.0), report_json(9.0, 2.0), opts).regression);
  // Force "gflops" lower-better: now the gain regresses.
  bench::DiffOptions flip;
  flip.lower_better = {"gflops"};
  EXPECT_TRUE(bench::diff_reports(report_json(1.0, 2.0), report_json(1.0, 3.0), flip).regression);
}

TEST(BenchDiff, UnmatchedRecordsAndMetricsAreNotedNotGated) {
  bench::JsonReport after;
  after.add_record().field("name", "spmv").field("format", "csr").field("seconds", 1.0).field(
      "new_metric", 7.0);
  after.add_record().field("name", "brand_new").field("seconds", 1.0);
  testutil::TempDir dir("benchdiff_notes");
  const std::string path = dir.str() + "/after.json";
  ASSERT_TRUE(after.write(path));
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  const auto result = bench::diff_reports(report_json(1.0, 2.0), text, {});
  EXPECT_FALSE(result.regression);
  // Three notes: the after-only metric, the after-only record, the
  // before-only record ("reduce").
  EXPECT_EQ(result.notes.size(), 3u);
}

TEST(BenchDiff, FileRoundTripMatchesInMemoryDiff) {
  testutil::TempDir dir("benchdiff_files");
  bench::JsonReport before;
  before.add_record().field("name", "spmv").field("seconds", 1.0);
  bench::JsonReport after;
  after.add_record().field("name", "spmv").field("seconds", 2.0);
  const std::string bpath = dir.str() + "/before.json";
  const std::string apath = dir.str() + "/after.json";
  ASSERT_TRUE(before.write(bpath));
  ASSERT_TRUE(after.write(apath));
  const auto result = bench::diff_report_files(bpath, apath, {});
  EXPECT_TRUE(result.regression);
  const std::string table = bench::format_diff(result, 10.0);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("name=spmv"), std::string::npos);
}

TEST(BenchDiff, MalformedInputThrows) {
  EXPECT_THROW(bench::diff_reports("{}", "{}", {}), std::runtime_error);
  EXPECT_THROW(bench::diff_reports("not json", "{\"records\":[]}", {}), std::runtime_error);
}

}  // namespace
}  // namespace dooc
