// dooc::fault — the fault-injection & recovery layer, end to end:
//
//  * FaultPlan: deterministic schedules (same seed ⇒ same verdicts), the
//    DOOC_FAULTS grammar, outage windows and programmatic mark_down;
//  * RetryPolicy / RetryBudget: capped exponential backoff and deadlines
//    under a fake clock;
//  * ExecutorCore: fault() retry/poison transitions, resurrect() rerun
//    semantics, the all_settled() drain condition;
//  * causal: the "fault" blame category splits retry/latency time out of a
//    Load node's demand-io;
//  * sched::Engine: transient read errors absorbed bit-exactly by the I/O
//    retry loop; permanent failures drain into a structured FaultSummary
//    instead of aborting;
//  * storage: failover to the durable file when a block's home node is down;
//  * SimEngine/testbed: the same plan replayed under virtual time — retries
//    and a bounded one-node outage degrade makespan gracefully.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fault/fault_plan.hpp"
#include "fault/retry_policy.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "sched/engine.hpp"
#include "sched/executor_core.hpp"
#include "simcluster/testbed.hpp"
#include "storage/storage_cluster.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

using fault::FaultConfig;
using fault::FaultDecision;
using fault::FaultKind;
using fault::FaultPlan;
using fault::RetryBudget;
using fault::RetryPolicy;
using storage::Interval;

// ---------------------------------------------------------------------------
// FaultPlan: determinism and grammar
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedDrawsTheSameSchedule) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.read_error_rate = 0.2;
  cfg.short_read_rate = 0.1;
  cfg.latency_rate = 0.1;
  cfg.latency_s = 0.005;
  FaultPlan a(cfg);
  FaultPlan b(cfg);
  bool injected_any = false;
  for (int node = 0; node < 3; ++node) {
    for (int op = 0; op < 200; ++op) {
      const FaultDecision da = a.next_read(node);
      const FaultDecision db = b.next_read(node);
      EXPECT_EQ(da.action, db.action) << "node " << node << " op " << op;
      injected_any |= da.injects();
    }
  }
  EXPECT_TRUE(injected_any) << "600 draws at 40% total rate must inject";

  // A different seed yields a different schedule somewhere in 200 draws.
  cfg.seed = 8;
  FaultPlan c(cfg);
  bool differs = false;
  FaultPlan a2(a.config());
  for (int op = 0; op < 200; ++op) {
    differs |= a2.next_read(0).action != c.next_read(0).action;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ParseReadsTheFullGrammar) {
  const FaultConfig cfg = FaultPlan::parse(
      "seed=9,read_error=0.05,write_error=0.01,short_read=0.02,"
      "latency=0.1:5ms,down=1@40+10,down=2@7,retries=6,backoff=2ms:50ms,deadline=2s");
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.read_error_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.write_error_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.short_read_rate, 0.02);
  EXPECT_DOUBLE_EQ(cfg.latency_rate, 0.1);
  EXPECT_DOUBLE_EQ(cfg.latency_s, 0.005);
  ASSERT_EQ(cfg.outages.size(), 2u);
  EXPECT_EQ(cfg.outages[0].node, 1);
  EXPECT_EQ(cfg.outages[0].after_ops, 40u);
  EXPECT_EQ(cfg.outages[0].duration_ops, 10u);
  EXPECT_EQ(cfg.outages[1].node, 2);
  EXPECT_EQ(cfg.outages[1].after_ops, 7u);
  EXPECT_EQ(cfg.outages[1].duration_ops, UINT64_MAX) << "no +OPS means permanent";
  EXPECT_EQ(cfg.retry.max_attempts, 6);
  EXPECT_DOUBLE_EQ(cfg.retry.base_backoff_s, 0.002);
  EXPECT_DOUBLE_EQ(cfg.retry.max_backoff_s, 0.050);
  EXPECT_DOUBLE_EQ(cfg.retry.deadline_s, 2.0);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultPlan::parse("read_error"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("bogus_key=1"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("read_error=not_a_number"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("latency=0.1"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("down=3"), InvalidArgument);
  EXPECT_THROW((void)FaultPlan::parse("deadline=5fortnights"), InvalidArgument);
  EXPECT_THROW(FaultPlan(FaultPlan::parse("read_error=1.5")), InvalidArgument)
      << "rates outside [0,1] must be rejected at construction";
}

TEST(FaultPlan, OutageWindowsRunOnTheOpClock) {
  FaultConfig cfg = FaultPlan::parse("down=0@3+2");
  FaultPlan plan(cfg);
  EXPECT_FALSE(plan.node_down(0));
  for (int i = 0; i < 3; ++i) (void)plan.next_read(0);
  EXPECT_TRUE(plan.node_down(0)) << "after 3 ops the window opens";
  EXPECT_FALSE(plan.node_down(1)) << "other nodes are unaffected";
  for (int i = 0; i < 2; ++i) (void)plan.next_read(0);
  EXPECT_FALSE(plan.node_down(0)) << "the window closes after +2 ops";
  EXPECT_EQ(plan.ops_seen(0), 5u);

  // Programmatic control overrides the schedule either way.
  plan.mark_down(1);
  EXPECT_TRUE(plan.node_down(1));
  plan.mark_up(1);
  EXPECT_FALSE(plan.node_down(1));
}

// ---------------------------------------------------------------------------
// RetryPolicy under a fake clock
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy p;
  p.base_backoff_s = 0.001;
  p.max_backoff_s = 0.006;
  EXPECT_DOUBLE_EQ(backoff_delay_s(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(backoff_delay_s(p, 1), 0.001);
  EXPECT_DOUBLE_EQ(backoff_delay_s(p, 2), 0.002);
  EXPECT_DOUBLE_EQ(backoff_delay_s(p, 3), 0.004);
  EXPECT_DOUBLE_EQ(backoff_delay_s(p, 4), 0.006) << "capped at max_backoff_s";
  EXPECT_DOUBLE_EQ(backoff_delay_s(p, 40), 0.006);
}

TEST(RetryPolicy, BudgetCountsAttemptsAndEnforcesTheDeadline) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_backoff_s = 0.010;
  p.max_backoff_s = 0.040;
  p.deadline_s = 1.0;

  double now = 100.0;  // fake clock
  RetryBudget budget(p, now);
  EXPECT_TRUE(budget.try_again(now));  // failure 1: attempts 2 and 3 remain
  EXPECT_DOUBLE_EQ(budget.next_backoff_s(now), 0.010);
  now += 0.010;
  EXPECT_TRUE(budget.try_again(now));  // failure 2: the final attempt remains
  EXPECT_DOUBLE_EQ(budget.next_backoff_s(now), 0.020);
  now += 0.020;
  EXPECT_FALSE(budget.try_again(now)) << "failure 3 exhausts a 3-attempt budget";
  EXPECT_EQ(budget.failures(), 3);

  // Deadline: attempts remain but time is up.
  RetryBudget late(p, 100.0);
  EXPECT_FALSE(late.try_again(101.5)) << "past the deadline no retry is allowed";
  // The backoff is clipped so a wait never overruns the deadline.
  RetryBudget clip(p, 100.0);
  EXPECT_TRUE(clip.try_again(100.995));
  EXPECT_NEAR(clip.next_backoff_s(100.995), 0.005, 1e-12);
}

// ---------------------------------------------------------------------------
// ExecutorCore: fault() / resurrect() / all_settled()
// ---------------------------------------------------------------------------

sched::Task make_task(std::string name, std::vector<Interval> in, std::vector<Interval> out) {
  sched::Task t;
  t.name = std::move(name);
  t.kind = "test";
  t.inputs = std::move(in);
  t.outputs = std::move(out);
  return t;
}

class FakeProbe final : public sched::ResidencyProbe {
 public:
  std::set<std::string> resident;

  std::uint64_t resident_input_bytes(int, const sched::Task& task) override {
    std::uint64_t bytes = 0;
    for (const auto& in : task.inputs) {
      if (resident.count(in.array) != 0) bytes += in.length;
    }
    return bytes;
  }
  bool inputs_resident(int, const sched::Task& task) override {
    for (const auto& in : task.inputs) {
      if (resident.count(in.array) == 0) return false;
    }
    return true;
  }
};

TEST(ExecutorCoreFault, RetriesThenPoisonsTheTaskAndItsSuccessors) {
  sched::TaskGraph g;
  const sched::TaskId w = g.add(make_task("w", {}, {{"in", 0, 8}}));
  const sched::TaskId r = g.add(make_task("r", {{"in", 0, 8}}, {{"mid", 0, 8}}));
  const sched::TaskId c = g.add(make_task("c", {{"mid", 0, 8}}, {{"out", 0, 8}}));
  g.build();
  FakeProbe probe;
  sched::CoreConfig cfg;
  cfg.max_task_retries = 2;
  sched::ExecutorCore core(g, {0, 0, 0}, 1, cfg, &probe);

  std::vector<std::pair<int, sched::TaskId>> newly;
  core.stage(core.next_to_stage(0, sched::StageSelect::Resident).task, 0);
  core.take_runnable(0);
  core.finish(w, newly);

  std::vector<sched::TaskId> poisoned;
  EXPECT_EQ(core.fault(w, &poisoned), sched::ExecutorCore::FaultAction::Ignored)
      << "faulting a Done task is a stale report";

  for (int attempt = 0; attempt < cfg.max_task_retries; ++attempt) {
    core.stage(core.next_to_stage(0, sched::StageSelect::Missing).task, 1);
    ASSERT_EQ(core.state(r), sched::TaskState::InputsPending);
    EXPECT_EQ(core.fault(r, &poisoned), sched::ExecutorCore::FaultAction::Retry);
    EXPECT_EQ(core.state(r), sched::TaskState::Assigned) << "retry re-queues the task";
    EXPECT_EQ(core.retries(r), attempt + 1);
  }
  EXPECT_TRUE(poisoned.empty());

  // Budget exhausted: the task and its transitive successor poison together.
  core.stage(core.next_to_stage(0, sched::StageSelect::Missing).task, 1);
  EXPECT_EQ(core.fault(r, &poisoned), sched::ExecutorCore::FaultAction::Poisoned);
  ASSERT_EQ(poisoned.size(), 2u);
  EXPECT_EQ(poisoned[0], r) << "the failed task comes first";
  EXPECT_EQ(poisoned[1], c);
  EXPECT_EQ(core.state(r), sched::TaskState::Faulted);
  EXPECT_EQ(core.state(c), sched::TaskState::Faulted);
  EXPECT_FALSE(core.all_done());
  EXPECT_TRUE(core.all_settled()) << "done + faulted covers the graph: drain, don't hang";
  const std::vector<sched::TaskId> faulted = core.faulted_tasks();
  EXPECT_EQ(faulted.size(), 2u);
}

TEST(ExecutorCoreFault, ResurrectRerunsAProducerWithoutDoubleCountingDeps) {
  sched::TaskGraph g;
  const sched::TaskId w = g.add(make_task("w", {}, {{"in", 0, 8}}));
  const sched::TaskId r = g.add(make_task("r", {{"in", 0, 8}}, {{"out", 0, 8}}));
  g.build();
  FakeProbe probe;
  sched::ExecutorCore core(g, {0, 0}, 1, {}, &probe);

  std::vector<std::pair<int, sched::TaskId>> newly;
  core.stage(core.next_to_stage(0, sched::StageSelect::Resident).task, 0);
  core.take_runnable(0);
  core.finish(w, newly);
  core.stage(core.next_to_stage(0, sched::StageSelect::Missing).task, 1);
  ASSERT_EQ(core.state(r), sched::TaskState::InputsPending);

  // The block `w` wrote was lost: re-queue the producer.
  EXPECT_FALSE(core.resurrect(r)) << "only Done tasks can be resurrected";
  EXPECT_TRUE(core.resurrect(w));
  EXPECT_EQ(core.state(w), sched::TaskState::Assigned);

  newly.clear();
  core.stage(core.next_to_stage(0, sched::StageSelect::Resident).task, 0);
  ASSERT_EQ(core.take_runnable(0), w);
  core.finish(w, newly);
  EXPECT_TRUE(newly.empty()) << "a rerun must not decrement successor deps again";
  EXPECT_EQ(core.state(r), sched::TaskState::InputsPending) << "consumer still parked";

  EXPECT_TRUE(core.note_input(r));
  ASSERT_EQ(core.take_runnable(0), r);
  core.finish(r, newly);
  EXPECT_TRUE(core.all_done());
}

// ---------------------------------------------------------------------------
// causal: the "fault" blame category
// ---------------------------------------------------------------------------

obs::ParsedEvent span(const char* cat, const char* name, double ts, double dur, int pid, int tid,
                      std::int64_t task = -1) {
  obs::ParsedEvent ev;
  ev.phase = 'X';
  ev.cat = cat;
  ev.name = name;
  ev.ts_us = ts;
  ev.dur_us = dur;
  ev.pid = pid;
  ev.tid = tid;
  if (task >= 0) ev.args["task"] = static_cast<double>(task);
  return ev;
}

obs::ParsedEvent flow(char phase, std::uint64_t id, double ts, int pid, int tid,
                      std::int64_t task = -1) {
  obs::ParsedEvent ev;
  ev.phase = phase;
  ev.cat = "load";
  ev.name = "flow";
  ev.ts_us = ts;
  ev.pid = pid;
  ev.tid = tid;
  ev.flow_id = id;
  if (task >= 0) ev.args["task"] = static_cast<double>(task);
  return ev;
}

TEST(CausalFault, FaultSpansSplitOutOfALoadNodesDemandIo) {
  using namespace obs::causal;
  // A 100 µs block load feeds a 50 µs compute. 30 µs of the load interval
  // are covered by a cat "fault" span (retry backoff): the path must charge
  // those 30 µs to "fault" and only the remaining 70 µs to demand-io.
  const std::uint64_t load = flow_id_load("A", 0);
  std::vector<obs::ParsedEvent> events;
  events.push_back(flow('s', load, 0.0, 0, 100));
  events.push_back(flow('t', load, 100.0, 0, 100));
  events.push_back(flow('f', load, 100.0, 0, 0, /*task=*/1));
  events.push_back(span("task", "t1", 100.0, 50.0, 0, 0, /*task=*/1));
  events.push_back(span("fault", "retry_backoff", 10.0, 30.0, 0, 100));

  const CausalGraph g = CausalGraph::build(events);
  EXPECT_DOUBLE_EQ(g.makespan_us(), 150.0);
  const Blame b = g.blame();
  EXPECT_DOUBLE_EQ(b.get(kBlameFault), 30.0);
  EXPECT_DOUBLE_EQ(b.get(kBlameDemandIo), 70.0);
  EXPECT_DOUBLE_EQ(b.get(kBlameCompute), 50.0);
  EXPECT_DOUBLE_EQ(b.total_us(), g.makespan_us()) << "blame still tiles the makespan";
}

// ---------------------------------------------------------------------------
// Engine: transient absorption and graceful degradation
// ---------------------------------------------------------------------------

storage::StorageConfig engine_config(const testutil::TempDir& dir) {
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 16ull << 20;
  cfg.default_block_size = 4096;
  return cfg;
}

void import_blocks(storage::StorageNode& node, const std::string& dir_path,
                   const std::string& name, int blocks, std::uint64_t block_bytes) {
  const std::string path = dir_path + "/" + name + ".bin";
  std::ofstream out(path, std::ios::binary);
  std::vector<char> data(static_cast<std::size_t>(blocks) * block_bytes, 'z');
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  node.import_file(name, path, block_bytes);
}

TEST(EngineFault, TransientReadErrorsAreAbsorbedBitExactly) {
  testutil::TempDir dir("fault_transient");
  storage::StorageConfig cfg = engine_config(dir);
  cfg.fault_plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("seed=3,read_error=0.5,retries=10,backoff=1us:4us"));
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  import_blocks(node, node.scratch_dir(), "m", 8, 64 * 1024);

  sched::TaskGraph g;
  for (int i = 0; i < 8; ++i) {
    node.create_array("ft_out" + std::to_string(i), 8, 8);
    sched::Task t = make_task("r" + std::to_string(i),
                              {{"m", static_cast<std::uint64_t>(i) * 64 * 1024, 1024}},
                              {{"ft_out" + std::to_string(i), 0, 8}});
    t.seq = i;
    t.work = [](sched::TaskContext& ctx) {
      ctx.output(0).as<std::uint64_t>()[0] = static_cast<std::uint64_t>(ctx.input(0).bytes()[0]);
    };
    g.add(std::move(t));
  }
  g.build();

  auto& io_retries = obs::Metrics::instance().counter("io.retries", 0);
  const std::uint64_t retries_before = io_retries.get();

  sched::Engine engine(cluster, {});
  const sched::Report report = engine.run(g);
  EXPECT_EQ(report.tasks_executed, 8u);
  EXPECT_TRUE(report.faults.ok()) << report.faults.to_text();

  // Bit-exact results despite injected failures...
  for (int i = 0; i < 8; ++i) {
    auto r = node.request_read({"ft_out" + std::to_string(i), 0, 8}).get();
    EXPECT_EQ(r.as<std::uint64_t>()[0], static_cast<std::uint64_t>('z'));
  }
  // ...and the recovery left visible fingerprints.
  EXPECT_GT(cfg.fault_plan->injected(FaultKind::ReadError), 0u)
      << "seed=3 at 50% must inject across >= 8 reads";
  EXPECT_GT(io_retries.get(), retries_before) << "absorbed errors surface as io.retries";
}

TEST(EngineFault, PermanentFailureDrainsIntoAStructuredSummary) {
  testutil::TempDir dir("fault_permanent");
  storage::StorageConfig cfg = engine_config(dir);
  cfg.fault_plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("read_error=1.0,retries=2,backoff=1us:2us"));
  storage::StorageCluster cluster(1, cfg);
  auto& node = cluster.node(0);
  std::filesystem::create_directories(node.scratch_dir());
  import_blocks(node, node.scratch_dir(), "m", 2, 64 * 1024);

  sched::TaskGraph g;
  // A healthy writer (no disk inputs) must still complete...
  node.create_array("pf_ok", 8, 8);
  sched::Task ok = make_task("ok", {}, {{"pf_ok", 0, 8}});
  ok.work = [](sched::TaskContext& ctx) { ctx.output(0).as<std::uint64_t>()[0] = 42; };
  g.add(std::move(ok));
  // ...while the doomed reader and its consumer settle as Faulted.
  node.create_array("pf_mid", 8, 8);
  node.create_array("pf_out", 8, 8);
  sched::Task r = make_task("doomed", {{"m", 0, 1024}}, {{"pf_mid", 0, 8}});
  const auto write_one = [](sched::TaskContext& ctx) {
    ctx.output(0).as<std::uint64_t>()[0] = 1;
  };
  r.work = write_one;
  const sched::TaskId rid = g.add(std::move(r));
  sched::Task c = make_task("downstream", {{"pf_mid", 0, 8}}, {{"pf_out", 0, 8}});
  c.work = write_one;
  g.add(std::move(c));
  g.build();

  sched::Engine engine(cluster, {});
  sched::Report report;
  ASSERT_NO_THROW(report = engine.run(g)) << "graceful degradation, not an abort";

  EXPECT_EQ(report.tasks_executed, 1u) << "the healthy writer completed";
  EXPECT_FALSE(report.faults.ok());
  ASSERT_EQ(report.faults.failed.size(), 1u);
  EXPECT_EQ(report.faults.failed[0].task, rid);
  EXPECT_EQ(report.faults.failed[0].name, "doomed");
  EXPECT_FALSE(report.faults.failed[0].error.empty());
  EXPECT_EQ(report.faults.poisoned, 1u) << "the downstream consumer was poisoned";
  EXPECT_GE(report.faults.task_retries, 1u);
  EXPECT_GE(report.faults.load_faults, report.faults.task_retries);
  EXPECT_NE(report.faults.to_text().find("doomed"), std::string::npos);

  auto v = node.request_read({"pf_ok", 0, 8}).get();
  EXPECT_EQ(v.as<std::uint64_t>()[0], 42u);
}

// ---------------------------------------------------------------------------
// Storage: failover when a block's home node is down
// ---------------------------------------------------------------------------

TEST(StorageFault, DurableReadsFailOverWhenTheHomeNodeIsDown) {
  testutil::TempDir dir("fault_failover");
  storage::StorageConfig cfg = engine_config(dir);
  cfg.fault_plan = std::make_shared<FaultPlan>();  // inert: programmatic outages only
  storage::StorageCluster cluster(2, cfg);
  auto& home = cluster.node(0);
  std::filesystem::create_directories(home.scratch_dir());
  import_blocks(home, home.scratch_dir(), "fo_m", 2, 64 * 1024);

  auto& failover = obs::Metrics::instance().counter("storage.failover", 1);
  const std::uint64_t failover_before = failover.get();

  cfg.fault_plan->mark_down(0);
  auto r = cluster.node(1).request_read({"fo_m", 0, 1024}).get();
  EXPECT_EQ(static_cast<char>(r.bytes()[0]), 'z')
      << "the durable file serves the read despite the outage";
  EXPECT_GT(failover.get(), failover_before);
  cfg.fault_plan->mark_up(0);
}

// ---------------------------------------------------------------------------
// DES: the same plan under virtual time
// ---------------------------------------------------------------------------

sim::TestbedExperiment small_experiment() {
  sim::TestbedExperiment e;
  e.nodes = 4;
  e.iterations = 2;
  e.rows_per_node = 100'000;
  e.nnz_per_node = 1'000'000;
  e.blocks_per_node_side = 2;
  e.submatrix_bytes = 64ull << 20;
  return e;
}

TEST(SimFault, FetchRetriesDegradeMakespanGracefully) {
  const sim::TestbedExperiment clean = small_experiment();
  const sim::SimMetrics m0 = sim::run_testbed(clean).metrics;
  EXPECT_EQ(m0.fetch_faults, 0u);

  sim::TestbedExperiment faulty = small_experiment();
  faulty.fault_plan = std::make_shared<FaultPlan>(
      FaultPlan::parse("seed=5,read_error=0.25,retries=6"));
  const sim::SimMetrics m1 = sim::run_testbed(faulty).metrics;

  EXPECT_GT(m1.fetch_faults, 0u) << "25% read errors over dozens of fetches must fire";
  EXPECT_GT(m1.fetch_retries, 0u);
  EXPECT_EQ(m1.tasks_faulted, 0u) << "a 6-attempt budget absorbs 25% transients";
  EXPECT_GT(m1.makespan, m0.makespan) << "retries cost virtual time, not correctness";
}

TEST(SimFault, BoundedNodeOutageCompletesWithDegradedMakespan) {
  const sim::TestbedExperiment clean = small_experiment();
  const sim::SimMetrics m0 = sim::run_testbed(clean).metrics;

  sim::TestbedExperiment outage = small_experiment();
  outage.fault_plan = std::make_shared<FaultPlan>(FaultPlan::parse("down=1@5+40"));
  sim::SimMetrics m1;
  ASSERT_NO_THROW(m1 = sim::run_testbed(outage).metrics)
      << "a bounded outage must drain, not deadlock";
  EXPECT_EQ(m1.tasks_faulted, 0u);
  EXPECT_GE(m1.makespan, m0.makespan);
}

}  // namespace
}  // namespace dooc
