// Cross-module integration & regression tests:
//   * the Fig. 5 load-count claim as a regression test on the real backend,
//   * multi-slot engines, throttled-overlap behaviour,
//   * distributed vector ops,
//   * an end-to-end CI-Hamiltonian -> deploy -> iterated-SpMV -> verify run,
//   * storage stress under concurrent mixed traffic.
#include <gtest/gtest.h>

#include <thread>

#include "ci/hamiltonian.hpp"
#include "sched/engine.hpp"
#include "solver/dist_vector.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/generator.hpp"
#include "test_util.hpp"

namespace dooc {
namespace {

// ---------------------------------------------------------------------------
// Fig. 5 regression: the data-aware local scheduler saves one matrix load
// per node per subsequent iteration under a one-block memory budget.
// ---------------------------------------------------------------------------

std::uint64_t run_fig5(sched::LocalPolicy policy) {
  testutil::TempDir dir("fig5reg");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 16ull << 20;  // one ~11 MB sub-matrix fits
  storage::StorageCluster cluster(3, cfg);

  auto m = spmv::generate_uniform_gap(3 * 2048, 3 * 2048, 4.0, 0xf15);
  const auto owner = spmv::row_strip_owner(3);
  const auto deployed = spmv::deploy_matrix(cluster, m, 3, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t) { return 1.0; });

  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  config.inter_iteration_sync = true;
  solver::IteratedSpmv driver(cluster, deployed, config);

  sched::EngineConfig ecfg;
  ecfg.local_policy = policy;
  ecfg.prefetch_window = 0;
  sched::Engine engine(cluster, ecfg);
  const auto report = driver.run(engine);
  return report.storage.disk_reads;
}

TEST(Fig5Regression, DataAwareSavesOneLoadPerNodePerIteration) {
  const auto fifo_reads = run_fig5(sched::LocalPolicy::Fifo);
  const auto aware_reads = run_fig5(sched::LocalPolicy::DataAware);
  // FIFO: 3 loads/node in both iterations = 18. Data-aware: 18 - 3 = 15.
  EXPECT_EQ(fifo_reads, 18u);
  EXPECT_EQ(aware_reads, 15u);
}

// ---------------------------------------------------------------------------
// Engine configurations
// ---------------------------------------------------------------------------

TEST(EngineIntegration, MultipleComputeSlotsStayCorrect) {
  testutil::TempDir dir("slots");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  storage::StorageCluster cluster(2, cfg);
  auto m = spmv::generate_uniform_gap(128, 128, 2.0, 5);
  for (auto& v : m.values) v *= 0.05;
  const auto owner = spmv::column_strip_owner(2);
  const auto deployed = spmv::deploy_matrix(cluster, m, 4, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 + 0.001 * static_cast<double>(i); });
  solver::IteratedSpmvConfig config;
  config.iterations = 3;
  solver::IteratedSpmv driver(cluster, deployed, config);
  sched::EngineConfig ecfg;
  ecfg.compute_slots_per_node = 3;
  ecfg.split_threads_per_node = 2;
  sched::Engine engine(cluster, ecfg);
  driver.run(engine);

  std::vector<double> x(128);
  for (std::size_t i = 0; i < 128; ++i) x[i] = 1.0 + 0.001 * static_cast<double>(i);
  std::vector<double> y(128);
  for (int it = 0; it < 3; ++it) {
    m.multiply(x, y);
    x.swap(y);
  }
  const auto got = driver.gather_result();
  for (std::size_t i = 0; i < 128; ++i) EXPECT_NEAR(got[i], x[i], 1e-12);
}

TEST(EngineIntegration, ThrottledDeviceOverlapsWithPrefetch) {
  // With a throttled device and prefetch, total time ~ max(io, compute),
  // far below io + compute.
  auto run = [](int window) {
    testutil::TempDir dir("ovl");
    storage::StorageConfig cfg;
    cfg.scratch_root = dir.str();
    cfg.throttle_read_bw = 100e6;
    cfg.io_workers = 2;
    cfg.memory_budget = 64ull << 20;
    storage::StorageCluster cluster(1, cfg);
    auto m = spmv::generate_uniform_gap(4096, 4096, 2.5, 0x77);
    const auto owner = spmv::column_strip_owner(1);
    const auto deployed = spmv::deploy_matrix(cluster, m, 4, owner);
    spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                    [](std::uint64_t) { return 1.0; });
    solver::IteratedSpmvConfig config;
    config.iterations = 1;
    solver::IteratedSpmv driver(cluster, deployed, config);
    sched::EngineConfig ecfg;
    ecfg.prefetch_window = window;
    sched::Engine engine(cluster, ecfg);
    Stopwatch sw;
    driver.run(engine);
    return sw.seconds();
  };
  const double with_prefetch = run(3);
  const double without = run(0);
  EXPECT_LT(with_prefetch, without);
}

// ---------------------------------------------------------------------------
// Distributed vector ops
// ---------------------------------------------------------------------------

TEST(DistVector, CreateGatherDotFlushRemove) {
  testutil::TempDir dir("dvec");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  storage::StorageCluster cluster(2, cfg);
  spmv::BlockGrid grid(100, 4);
  solver::DistVectorOps vecs(cluster, grid, spmv::column_strip_owner(2));

  vecs.create("a", 0, [](std::uint64_t i) { return static_cast<double>(i); });
  vecs.create("b", 0, [](std::uint64_t) { return 2.0; });
  EXPECT_TRUE(vecs.exists("a", 0));
  EXPECT_FALSE(vecs.exists("ghost", 0));

  const auto a = vecs.gather("a", 0);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_DOUBLE_EQ(a[57], 57.0);

  // dot(a, b) = 2 * sum(0..99) = 9900.
  EXPECT_DOUBLE_EQ(vecs.dot("a", 0, "b", 0), 9900.0);
  EXPECT_DOUBLE_EQ(vecs.norm2("b", 0), std::sqrt(400.0));

  std::vector<double> dense(100, 1.0);
  vecs.axpy_into(dense, 3.0, "b", 0);  // 1 + 3*2 = 7 everywhere
  for (double v : dense) EXPECT_DOUBLE_EQ(v, 7.0);
  EXPECT_DOUBLE_EQ(vecs.dot_dense(dense, "b", 0), 7.0 * 2.0 * 100.0);

  vecs.flush("a", 0);
  vecs.remove("a", 0);
  EXPECT_FALSE(vecs.exists("a", 0));
}

// ---------------------------------------------------------------------------
// CI end-to-end: Hamiltonian built from physics, solved out of core.
// ---------------------------------------------------------------------------

TEST(CiEndToEnd, HamiltonianIteratedSpmvMatchesInMemory) {
  const ci::NucleusConfig nucleus{2, 1, 2, 1};
  const auto h = ci::build_hamiltonian(nucleus);
  ASSERT_GT(h.rows, 8u);

  testutil::TempDir dir("ci2e");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 1ull << 20;
  storage::StorageCluster cluster(2, cfg);
  const auto owner = spmv::column_strip_owner(2);
  const int k = 3;
  auto scaled = h;
  for (auto& v : scaled.values) v *= 0.01;
  const auto deployed = spmv::deploy_matrix(cluster, scaled, k, owner, "H");
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0,
                                  [](std::uint64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); });
  solver::IteratedSpmvConfig config;
  config.iterations = 2;
  solver::IteratedSpmv driver(cluster, deployed, config);
  sched::Engine engine(cluster, {});
  driver.run(engine);

  std::vector<double> x(h.rows);
  for (std::uint64_t i = 0; i < h.rows; ++i) x[i] = 1.0 / (1.0 + static_cast<double>(i));
  std::vector<double> y(h.rows);
  for (int it = 0; it < 2; ++it) {
    scaled.multiply(x, y);
    x.swap(y);
  }
  const auto got = driver.gather_result();
  for (std::uint64_t i = 0; i < h.rows; ++i) EXPECT_NEAR(got[i], x[i], 1e-12);
}

// ---------------------------------------------------------------------------
// Storage stress: concurrent mixed readers/writers across nodes.
// ---------------------------------------------------------------------------

TEST(StorageStress, ConcurrentMixedTrafficKeepsInvariants) {
  testutil::TempDir dir("stress");
  storage::StorageConfig cfg;
  cfg.scratch_root = dir.str();
  cfg.memory_budget = 1 << 16;  // tiny: force constant eviction
  storage::StorageCluster cluster(3, cfg);

  constexpr int kArraysPerNode = 12;
  constexpr std::uint64_t kBytes = 4096;

  // Phase 1: every node writes its arrays concurrently.
  std::vector<std::thread> writers;
  for (int n = 0; n < 3; ++n) {
    writers.emplace_back([&, n] {
      for (int a = 0; a < kArraysPerNode; ++a) {
        const std::string name = "s" + std::to_string(n) + "_" + std::to_string(a);
        auto& node = cluster.node(n);
        node.create_array(name, kBytes, kBytes);
        auto w = node.request_write({name, 0, kBytes}).get();
        auto span = w.as<std::uint64_t>();
        for (std::size_t i = 0; i < span.size(); ++i) {
          span[i] = static_cast<std::uint64_t>(n) * 1000 + static_cast<std::uint64_t>(a);
        }
        w.release();
        node.flush_array(name);
      }
    });
  }
  for (auto& t : writers) t.join();

  // Phase 2: every node reads *everyone's* arrays concurrently, repeatedly.
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 3; ++reader) {
    readers.emplace_back([&, reader] {
      for (int round = 0; round < 3; ++round) {
        for (int n = 0; n < 3; ++n) {
          for (int a = 0; a < kArraysPerNode; ++a) {
            const std::string name = "s" + std::to_string(n) + "_" + std::to_string(a);
            auto r = cluster.node(reader).request_read({name, 0, kBytes}).get();
            const auto span = r.as<std::uint64_t>();
            const auto expect =
                static_cast<std::uint64_t>(n) * 1000 + static_cast<std::uint64_t>(a);
            for (auto v : span) {
              if (v != expect) {
                ++failures;
                break;
              }
            }
          }
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Tiny budget + 36 arrays x 3 copies: evictions must have happened and
  // every read still saw the right bytes.
  EXPECT_GT(cluster.total_stats().evictions, 0u);
}

}  // namespace
}  // namespace dooc
