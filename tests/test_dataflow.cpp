#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "dataflow/layout.hpp"
#include "dataflow/runtime.hpp"

namespace dooc::df {
namespace {

/// source -> doubler -> sink pipeline; checks payload integrity and EOS.
TEST(Dataflow, LinearPipeline) {
  Layout layout;
  layout.add_filter("source", [] {
    return std::make_unique<LambdaFilter>([](FilterContext& ctx) {
      for (std::uint64_t i = 0; i < 100; ++i) {
        DataBuffer b(8);
        b.as<std::uint64_t>()[0] = i;
        ctx.output("out").send(std::move(b), i);
      }
    });
  });
  layout.add_filter("doubler", [] {
    return std::make_unique<LambdaFilter>([](FilterContext& ctx) {
      while (auto m = ctx.input("in").receive()) {
        m->payload.as<std::uint64_t>()[0] *= 2;
        ctx.output("out").send(std::move(*m));
      }
    });
  });
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> count{0};
  layout.add_filter("sink", [&] {
    return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
      while (auto m = ctx.input("in").receive()) {
        sum += m->payload.as<std::uint64_t>()[0];
        ++count;
      }
    });
  });
  layout.connect("source", "out", "doubler", "in");
  layout.connect("doubler", "out", "sink", "in");

  Runtime rt(1);
  rt.run(layout);
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sum.load(), 2u * (99u * 100u / 2u));
}

/// Replicated (stateless) middle filter: every message processed exactly once.
TEST(Dataflow, TransparentCopiesShareTheStream) {
  constexpr int kMessages = 200;
  std::atomic<int> processed{0};
  std::atomic<int> received{0};

  Layout layout;
  layout.add_filter("source", [] {
    return std::make_unique<LambdaFilter>([](FilterContext& ctx) {
      for (int i = 0; i < kMessages; ++i) ctx.output("out").send(DataBuffer(16), i);
    });
  });
  layout.add_filter(
      "worker",
      [&] {
        return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
          EXPECT_EQ(ctx.num_replicas(), 3);
          while (auto m = ctx.input("in").receive()) {
            ++processed;
            ctx.output("out").send(std::move(*m));
          }
        });
      },
      {0, 0, 0});  // three transparent copies
  layout.add_filter("sink", [&] {
    return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
      while (ctx.input("in").receive()) ++received;
    });
  });
  layout.connect("source", "out", "worker", "in");
  layout.connect("worker", "out", "sink", "in");

  Runtime rt(1);
  rt.run(layout);
  EXPECT_EQ(processed.load(), kMessages);
  EXPECT_EQ(received.load(), kMessages);
}

/// Cross-node delivery deep-copies payloads; same-node delivery aliases.
TEST(Dataflow, NodeBoundaryCopySemantics) {
  DataBuffer shared(8);
  shared.as<std::uint64_t>()[0] = 5;

  std::atomic<bool> remote_saw_original{false};
  Layout layout;
  layout.add_filter("producer", [&] {
    return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
      ctx.output("remote").send(shared, 0);
      ctx.output("local").send(shared, 0);
    });
  });
  layout.add_filter(
      "remote_consumer",
      [&] {
        return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
          auto m = ctx.input("in").receive();
          ASSERT_TRUE(m.has_value());
          // Mutating the copy must not affect the producer's buffer.
          m->payload.as<std::uint64_t>()[0] = 99;
          remote_saw_original = true;
        });
      },
      {1});
  DataBuffer local_alias;
  layout.add_filter("local_consumer", [&] {
    return std::make_unique<LambdaFilter>([&](FilterContext& ctx) {
      auto m = ctx.input("in").receive();
      ASSERT_TRUE(m.has_value());
      local_alias = m->payload;
    });
  });
  layout.connect("producer", "remote", "remote_consumer", "in");
  layout.connect("producer", "local", "local_consumer", "in");

  Runtime rt(2);
  rt.run(layout);
  EXPECT_TRUE(remote_saw_original.load());
  EXPECT_EQ(shared.as<std::uint64_t>()[0], 5u) << "remote mutation leaked across nodes";
  EXPECT_EQ(local_alias, shared) << "same-node delivery should alias, not copy";
  EXPECT_EQ(rt.transport().bytes(0, 1), 8u);
  EXPECT_EQ(rt.transport().messages(0, 1), 1u);
  EXPECT_EQ(rt.transport().cross_node_bytes(), 8u);
}

TEST(Dataflow, StreamStatsCountMessagesAndBytes) {
  Layout layout;
  layout.add_filter("src", [] {
    return std::make_unique<LambdaFilter>([](FilterContext& ctx) {
      for (int i = 0; i < 10; ++i) ctx.output("out").send(DataBuffer(32), 0);
    });
  });
  layout.add_filter("dst", [] {
    return std::make_unique<LambdaFilter>([](FilterContext& ctx) {
      while (ctx.input("in").receive()) {
      }
    });
  });
  layout.connect("src", "out", "dst", "in");
  Runtime rt(1);
  rt.run(layout);
  const auto& stats = rt.stream_stats().at("src.out->dst.in");
  EXPECT_EQ(stats.messages, 10u);
  EXPECT_EQ(stats.bytes, 320u);
}

TEST(Dataflow, FilterExceptionPropagatesAndUnblocksPeers) {
  Layout layout;
  layout.add_filter("bad", [] {
    return std::make_unique<LambdaFilter>([](FilterContext&) {
      throw std::runtime_error("filter exploded");
    });
  });
  layout.add_filter("patient", [] {
    return std::make_unique<LambdaFilter>([](FilterContext& ctx) {
      while (ctx.input("in").receive()) {
      }
    });
  });
  layout.connect("bad", "out", "patient", "in");
  Runtime rt(1);
  EXPECT_THROW(rt.run(layout), std::runtime_error);
}

TEST(Dataflow, LayoutValidation) {
  Layout layout;
  layout.add_filter("a", [] { return std::make_unique<LambdaFilter>([](FilterContext&) {}); });
  EXPECT_THROW(layout.add_filter(
                   "a", [] { return std::make_unique<LambdaFilter>([](FilterContext&) {}); }),
               InvalidArgument);
  EXPECT_THROW(layout.connect("a", "out", "ghost", "in"), InvalidArgument);
  EXPECT_THROW(layout.add_filter(
                   "empty", [] { return std::make_unique<LambdaFilter>([](FilterContext&) {}); },
                   {}),
               InvalidArgument);
}

TEST(Dataflow, PlacementBeyondRuntimeNodesIsRejected) {
  Layout layout;
  layout.add_filter(
      "f", [] { return std::make_unique<LambdaFilter>([](FilterContext&) {}); }, {5});
  Runtime rt(2);
  EXPECT_THROW(rt.run(layout), InvalidArgument);
}

TEST(Dataflow, UnknownPortThrows) {
  Layout layout;
  layout.add_filter("f", [] {
    return std::make_unique<LambdaFilter>(
        [](FilterContext& ctx) { ctx.output("no_such_port").send(DataBuffer(1), 0); });
  });
  Runtime rt(1);
  EXPECT_THROW(rt.run(layout), InvalidArgument);
}

}  // namespace
}  // namespace dooc::df
